"""Circuit-backed triangle threshold queries.

This is the end-to-end application wrapper of Section 5: given a graph and a
triangle threshold (or a clustering-coefficient target), build the subcubic
trace circuit of Theorem 4.5 on the (padded) adjacency matrix and answer the
query by simulating the circuit.  The naive depth-2 circuit of Section 1 is
available as the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.naive_circuits import NaiveTriangleCircuit, build_naive_triangle_circuit
from repro.core.schedule import LevelSchedule
from repro.core.trace_circuit import TraceCircuit, build_trace_circuit
from repro.fastmm.bilinear import BilinearAlgorithm
from repro.fastmm.strassen import strassen_2x2
from repro.triangles.clustering import tau_from_wedges
from repro.triangles.counting import triangle_count
from repro.triangles.graphs import pad_adjacency, validate_adjacency

__all__ = ["TriangleQuery", "build_triangle_query"]


@dataclass
class TriangleQuery:
    """A reusable circuit answering "does G have at least tau triangles?".

    Evaluation rides the execution engine through the underlying
    :class:`~repro.core.trace_circuit.TraceCircuit`, so answering the same
    structural query for many graphs compiles the circuit once and streams
    the graphs through the batch scheduler.
    """

    trace_circuit: TraceCircuit
    tau_triangles: int
    original_n: int

    def _pad_to_circuit(self, adjacency) -> np.ndarray:
        adj = validate_adjacency(adjacency)
        padded, _ = pad_adjacency(adj, self.trace_circuit.algorithm.t)
        if padded.shape[0] != self.trace_circuit.n:
            target = self.trace_circuit.n
            if padded.shape[0] > target:
                raise ValueError(
                    f"graph has {padded.shape[0]} (padded) vertices; circuit supports {target}"
                )
            grown = np.zeros((target, target), dtype=np.int64)
            grown[: padded.shape[0], : padded.shape[0]] = padded
            padded = grown
        return padded

    def evaluate(self, adjacency) -> bool:
        """Answer the query for a graph on at most ``trace_circuit.n`` vertices."""
        return self.trace_circuit.evaluate(self._pad_to_circuit(adjacency))

    def evaluate_batch(self, adjacencies) -> np.ndarray:
        """Answer the query for many graphs with one batched evaluation."""
        padded = [self._pad_to_circuit(adjacency) for adjacency in adjacencies]
        return self.trace_circuit.evaluate_batch(padded)

    def submit_batch(self, adjacencies):
        """Asynchronous :meth:`evaluate_batch`: a future of the answers.

        Pipelines the padded batch through the engine's persistent
        evaluation service when one is configured (see
        :meth:`repro.core.trace_circuit.TraceCircuit.submit_batch`).
        """
        padded = [self._pad_to_circuit(adjacency) for adjacency in adjacencies]
        return self.trace_circuit.submit_batch(padded)

    def reference(self, adjacency) -> bool:
        """Exact answer used for validation."""
        return triangle_count(adjacency) >= self.tau_triangles


def build_triangle_query(
    n: int,
    tau_triangles: Optional[int] = None,
    clustering_target: Optional[float] = None,
    reference_graph=None,
    algorithm: Optional[BilinearAlgorithm] = None,
    depth_parameter: int = 2,
    schedule: Optional[LevelSchedule] = None,
    engine=None,
) -> TriangleQuery:
    """Build a triangle-threshold query circuit for graphs on ``n`` vertices.

    Exactly one of ``tau_triangles`` or (``clustering_target`` together with
    ``reference_graph``) must be provided; in the latter case ``tau`` is
    derived from the wedge count of the reference graph as in Section 5.
    The circuit decides ``trace(A^3) >= 6 * tau``.
    """
    algorithm = algorithm if algorithm is not None else strassen_2x2()
    if tau_triangles is None:
        if clustering_target is None or reference_graph is None:
            raise ValueError(
                "provide either tau_triangles or (clustering_target, reference_graph)"
            )
        tau_triangles = tau_from_wedges(reference_graph, clustering_target)
    if tau_triangles < 1:
        raise ValueError(f"the triangle threshold must be at least 1, got {tau_triangles}")

    # Pad the vertex count to a power of the algorithm's base dimension.
    probe = np.zeros((n, n), dtype=np.int64)
    padded, _ = pad_adjacency(probe, algorithm.t)
    padded_n = padded.shape[0]

    trace_circuit = build_trace_circuit(
        padded_n,
        6 * tau_triangles,
        bit_width=1,
        algorithm=algorithm,
        schedule=schedule,
        depth_parameter=depth_parameter,
        engine=engine,
    )
    return TriangleQuery(
        trace_circuit=trace_circuit,
        tau_triangles=tau_triangles,
        original_n=n,
    )
