"""Shared utilities: bit arithmetic, integer math and matrix helpers.

These helpers implement the low-level notation used throughout the paper
(Parekh et al., SPAA 2018): the ``bits()`` function of Section 2.3, the
signed split ``x = x+ - x-`` of Section 3, and the exact-integer matrix
handling the circuit constructions are validated against.
"""

from repro.util.bits import (
    bits,
    signed_split,
    to_binary,
    from_binary,
    max_abs_entry_bits,
)
from repro.util.intmath import (
    ceil_div,
    ceil_log,
    ilog,
    is_power_of,
    multinomial,
    prod,
)
from repro.util.matrices import (
    block_view,
    pad_to_power,
    random_integer_matrix,
    random_adjacency_matrix,
)
from repro.util.encoding import (
    MatrixEncoding,
    encode_integer,
    decode_integer,
)

__all__ = [
    "bits",
    "signed_split",
    "to_binary",
    "from_binary",
    "max_abs_entry_bits",
    "ceil_div",
    "ceil_log",
    "ilog",
    "is_power_of",
    "multinomial",
    "prod",
    "block_view",
    "pad_to_power",
    "random_integer_matrix",
    "random_adjacency_matrix",
    "MatrixEncoding",
    "encode_integer",
    "decode_integer",
]
