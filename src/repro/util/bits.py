"""Bit-level helpers matching the paper's notation.

The paper (Section 2.3) defines ``bits(m)`` as the minimum number of bits
required to express the nonnegative integer ``m`` in binary, i.e. the least
integer ``l`` such that ``m < 2**l``.  Note that under this definition
``bits(0) == 0`` and ``bits(1) == 1``.

Negative numbers (Section 3, "Negative numbers") are represented throughout
the circuits as a pair of nonnegative integers ``x = x_plus - x_minus``.
:func:`signed_split` produces the canonical such split (one of the two parts
is always zero), which keeps bit-widths minimal.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = [
    "bits",
    "signed_split",
    "to_binary",
    "from_binary",
    "max_abs_entry_bits",
]


def bits(m: int) -> int:
    """Return the least ``l`` such that ``m < 2**l`` (the paper's ``bits(m)``).

    Parameters
    ----------
    m:
        A nonnegative integer.

    Raises
    ------
    ValueError
        If ``m`` is negative.
    """
    m = int(m)
    if m < 0:
        raise ValueError(f"bits() requires a nonnegative integer, got {m}")
    return m.bit_length()


def signed_split(x: int) -> Tuple[int, int]:
    """Split an integer into the canonical ``(x_plus, x_minus)`` pair.

    ``x == x_plus - x_minus`` with both parts nonnegative and at most one of
    them nonzero.  This is the representation of signed quantities used by
    all circuits in this package (paper Section 3).
    """
    x = int(x)
    if x >= 0:
        return x, 0
    return 0, -x


def to_binary(m: int, width: int) -> List[int]:
    """Return the ``width`` least-significant bits of ``m``, LSB first.

    Raises
    ------
    ValueError
        If ``m`` is negative or does not fit in ``width`` bits.
    """
    m = int(m)
    if m < 0:
        raise ValueError(f"to_binary() requires a nonnegative integer, got {m}")
    if bits(m) > width:
        raise ValueError(f"{m} does not fit in {width} bits")
    return [(m >> i) & 1 for i in range(width)]


def from_binary(bit_values: Sequence[int]) -> int:
    """Inverse of :func:`to_binary`: interpret a LSB-first bit sequence."""
    value = 0
    for i, b in enumerate(bit_values):
        b = int(b)
        if b not in (0, 1):
            raise ValueError(f"bit values must be 0/1, got {b} at position {i}")
        value |= b << i
    return value


def max_abs_entry_bits(matrix) -> int:
    """Return ``bits(max |entry|)`` for an integer matrix (nested or numpy)."""
    import numpy as np

    arr = np.asarray(matrix, dtype=object)
    if arr.size == 0:
        return 0
    m = max(abs(int(v)) for v in arr.flat)
    return bits(m)
