"""Encoding of integer matrices onto circuit input wires.

Circuit inputs are single bits.  A signed integer entry ``x`` with magnitude
below ``2**bit_width`` occupies ``2 * bit_width`` input wires: ``bit_width``
bits for the positive part ``x+`` and ``bit_width`` bits for the negative
part ``x-`` (paper Section 3, "Negative numbers").  :class:`MatrixEncoding`
fixes the wire layout for a whole matrix and converts between integer
matrices and flat 0/1 input vectors understood by the simulator.

The layout is row-major over entries; within an entry the positive bits come
first (LSB first), then the negative bits (LSB first).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.util.bits import bits, signed_split, to_binary

__all__ = ["MatrixEncoding", "encode_integer", "decode_integer"]


def encode_integer(x: int, bit_width: int) -> List[int]:
    """Encode a signed integer as ``2 * bit_width`` bits (pos LSB.., neg LSB..)."""
    pos, neg = signed_split(int(x))
    if bits(pos) > bit_width or bits(neg) > bit_width:
        raise ValueError(f"{x} does not fit in a signed {bit_width}-bit encoding")
    return to_binary(pos, bit_width) + to_binary(neg, bit_width)


def decode_integer(bit_values, bit_width: int) -> int:
    """Inverse of :func:`encode_integer`."""
    if len(bit_values) != 2 * bit_width:
        raise ValueError(
            f"expected {2 * bit_width} bits, got {len(bit_values)}"
        )
    pos = sum(int(b) << i for i, b in enumerate(bit_values[:bit_width]))
    neg = sum(int(b) << i for i, b in enumerate(bit_values[bit_width:]))
    return pos - neg


@dataclass(frozen=True)
class MatrixEncoding:
    """Fixed wire layout for an ``n x n`` signed integer matrix.

    Parameters
    ----------
    n:
        Matrix dimension.
    bit_width:
        Number of magnitude bits per signed part.  Entries must satisfy
        ``|entry| < 2**bit_width``.
    offset:
        Index of the first wire used by this matrix (several matrices can
        share one input space, e.g. A and B for the product circuit).
    """

    n: int
    bit_width: int
    offset: int = 0

    @property
    def wires_per_entry(self) -> int:
        """Number of input wires per matrix entry (positive + negative bits)."""
        return 2 * self.bit_width

    @property
    def total_wires(self) -> int:
        """Total number of input wires occupied by the matrix."""
        return self.n * self.n * self.wires_per_entry

    def entry_wires(self, i: int, j: int) -> Tuple[List[int], List[int]]:
        """Return ``(positive_bit_wires, negative_bit_wires)`` for entry (i, j)."""
        if not (0 <= i < self.n and 0 <= j < self.n):
            raise IndexError(f"entry ({i}, {j}) out of range for an {self.n}x{self.n} matrix")
        base = self.offset + (i * self.n + j) * self.wires_per_entry
        pos = list(range(base, base + self.bit_width))
        neg = list(range(base + self.bit_width, base + 2 * self.bit_width))
        return pos, neg

    def encode(self, matrix) -> np.ndarray:
        """Encode an integer matrix into a flat 0/1 vector for its wires."""
        arr = np.asarray(matrix)
        if arr.shape != (self.n, self.n):
            raise ValueError(
                f"expected a {self.n}x{self.n} matrix, got shape {arr.shape}"
            )
        out = np.zeros(self.total_wires, dtype=np.int8)
        for i in range(self.n):
            for j in range(self.n):
                entry_bits = encode_integer(int(arr[i, j]), self.bit_width)
                base = (i * self.n + j) * self.wires_per_entry
                out[base : base + self.wires_per_entry] = entry_bits
        return out

    def decode(self, values: np.ndarray) -> np.ndarray:
        """Decode a flat 0/1 vector (over this matrix's wires) back to integers."""
        values = np.asarray(values)
        if values.shape[0] != self.total_wires:
            raise ValueError(
                f"expected {self.total_wires} wire values, got {values.shape[0]}"
            )
        out = np.empty((self.n, self.n), dtype=object)
        for i in range(self.n):
            for j in range(self.n):
                base = (i * self.n + j) * self.wires_per_entry
                chunk = values[base : base + self.wires_per_entry]
                out[i, j] = decode_integer(list(chunk), self.bit_width)
        return out
