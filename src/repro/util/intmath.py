"""Exact integer math helpers used by the counting lemmas.

The gate-count analysis (Lemmas 4.2, 4.3, 4.6, 4.7) relies on a handful of
combinatorial identities — most prominently the multinomial theorem used in
equations (3) and (5) of the paper.  These helpers keep that arithmetic exact
(Python integers) so the dry-run gate-count model can be validated
gate-for-gate against constructed circuits.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = [
    "ceil_div",
    "ceil_log",
    "ilog",
    "is_power_of",
    "multinomial",
    "prod",
]


def ceil_div(a: int, b: int) -> int:
    """Exact ceiling division for integers (``b`` must be positive)."""
    if b <= 0:
        raise ValueError(f"ceil_div requires a positive divisor, got {b}")
    return -((-a) // b)


def ilog(n: int, base: int) -> int:
    """Return ``log_base(n)`` for exact powers, else raise ``ValueError``."""
    if n <= 0 or base <= 1:
        raise ValueError(f"ilog requires n >= 1 and base >= 2, got n={n}, base={base}")
    result = 0
    value = 1
    while value < n:
        value *= base
        result += 1
    if value != n:
        raise ValueError(f"{n} is not a power of {base}")
    return result


def ceil_log(n: int, base: int) -> int:
    """Return the least integer ``k`` such that ``base**k >= n``."""
    if n <= 0 or base <= 1:
        raise ValueError(f"ceil_log requires n >= 1 and base >= 2, got n={n}, base={base}")
    result = 0
    value = 1
    while value < n:
        value *= base
        result += 1
    return result


def is_power_of(n: int, base: int) -> bool:
    """True when ``n`` is an exact nonnegative power of ``base``."""
    if n <= 0 or base <= 1:
        return False
    while n % base == 0:
        n //= base
    return n == 1


def multinomial(counts: Sequence[int]) -> int:
    """Exact multinomial coefficient ``(sum counts)! / prod(counts[i]!)``."""
    total = 0
    result = 1
    for c in counts:
        if c < 0:
            raise ValueError("multinomial requires nonnegative counts")
        total += c
        result *= math.comb(total, c)
    return result


def prod(values: Iterable[int]) -> int:
    """Exact integer product (empty product is 1)."""
    result = 1
    for v in values:
        result *= int(v)
    return result
