"""Exact-integer matrix helpers.

The paper's circuits operate on N x N integer matrices with O(log N)-bit
entries, where N is a power of the base dimension T of the fast matrix
multiplication algorithm in use.  These helpers generate such matrices,
pad arbitrary matrices up to the next power of T, and expose block views
used by the recursive fast multiplication substrate.

All helpers keep ``dtype=object`` (arbitrary-precision Python integers) as an
option so that reference results remain exact even for wide entries; the
default int64 path is used when it is provably safe.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.util.intmath import ceil_log

__all__ = [
    "block_view",
    "pad_to_power",
    "random_integer_matrix",
    "random_adjacency_matrix",
    "as_exact_array",
]


def as_exact_array(matrix) -> np.ndarray:
    """Return a 2-D ``dtype=object`` array of Python ints (exact arithmetic)."""
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {arr.shape}")
    out = np.empty(arr.shape, dtype=object)
    for idx, value in np.ndenumerate(arr):
        out[idx] = int(value)
    return out


def block_view(matrix: np.ndarray, t: int, p: int, q: int) -> np.ndarray:
    """Return the ``(p, q)``-th block of a matrix partitioned into a t x t grid.

    The matrix dimension must be divisible by ``t``.  The returned array is a
    view (no copy), matching the zero-copy idiom recommended for numerical
    code: downstream code must not mutate it.
    """
    n = matrix.shape[0]
    if matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {matrix.shape}")
    if n % t != 0:
        raise ValueError(f"matrix dimension {n} is not divisible by {t}")
    if not (0 <= p < t and 0 <= q < t):
        raise ValueError(f"block index ({p}, {q}) out of range for a {t}x{t} grid")
    k = n // t
    return matrix[p * k : (p + 1) * k, q * k : (q + 1) * k]


def pad_to_power(matrix: np.ndarray, base: int) -> Tuple[np.ndarray, int]:
    """Zero-pad a square matrix so its dimension is a power of ``base``.

    Returns ``(padded, original_n)``.  Matrices whose dimension is already a
    power of ``base`` are returned unchanged (same object).
    """
    arr = np.asarray(matrix)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {arr.shape}")
    n = arr.shape[0]
    if n == 0:
        raise ValueError("cannot pad an empty matrix")
    target = base ** ceil_log(n, base) if n > 1 else base
    if target == n:
        return arr, n
    padded = np.zeros((target, target), dtype=arr.dtype)
    padded[:n, :n] = arr
    return padded, n


def random_integer_matrix(
    n: int,
    bit_width: int,
    rng: Optional[np.random.Generator] = None,
    signed: bool = True,
) -> np.ndarray:
    """Random ``n x n`` integer matrix with entries of at most ``bit_width`` bits.

    With ``signed=True`` entries are drawn uniformly from
    ``[-(2**bit_width - 1), 2**bit_width - 1]``; otherwise from
    ``[0, 2**bit_width - 1]``.  This matches the paper's model of O(log N)-bit
    entries when ``bit_width`` is chosen as ``Theta(log n)``.
    """
    if n <= 0:
        raise ValueError(f"matrix dimension must be positive, got {n}")
    if bit_width < 0:
        raise ValueError(f"bit width must be nonnegative, got {bit_width}")
    rng = np.random.default_rng() if rng is None else rng
    high = (1 << bit_width) - 1
    low = -high if signed else 0
    values = rng.integers(low, high + 1, size=(n, n), dtype=np.int64)
    return values


def random_adjacency_matrix(
    n: int,
    edge_probability: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Random symmetric 0/1 adjacency matrix with an empty diagonal.

    This is the binary-matrix case highlighted in the paper's introduction
    (triangle counting on an Erdős–Rényi graph).
    """
    if n <= 0:
        raise ValueError(f"graph size must be positive, got {n}")
    if not (0.0 <= edge_probability <= 1.0):
        raise ValueError(f"edge probability must be in [0, 1], got {edge_probability}")
    rng = np.random.default_rng() if rng is None else rng
    upper = rng.random((n, n)) < edge_probability
    adj = np.triu(upper, k=1)
    adj = adj | adj.T
    return adj.astype(np.int64)
