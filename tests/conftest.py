"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.fastmm import naive_algorithm, strassen_2x2, winograd_2x2

# CI runs with pinned seeds (HYPOTHESIS_PROFILE=ci): failures reproduce
# across reruns instead of flaking, and print_blob gives the repro recipe.
settings.register_profile("ci", derandomize=True, print_blob=True)
if os.environ.get("HYPOTHESIS_PROFILE"):
    settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(20180716)  # SPAA'18 started July 16, 2018


@pytest.fixture(params=["strassen", "winograd", "naive-2"])
def any_algorithm(request):
    """Parametrized over the three 2x2 base-case algorithms."""
    factories = {
        "strassen": strassen_2x2,
        "winograd": winograd_2x2,
        "naive-2": lambda: naive_algorithm(2),
    }
    return factories[request.param]()


@pytest.fixture
def strassen():
    """The canonical Strassen algorithm."""
    return strassen_2x2()


def random_signed_matrix(rng, n, bit_width):
    """Uniform signed integer matrix with entries below 2**bit_width in magnitude."""
    high = (1 << bit_width) - 1
    return rng.integers(-high, high + 1, size=(n, n), dtype=np.int64)
