"""REP003 bad fixture: guarded dispatcher state touched without the lock.

The class name matches the registry entry, so the rule applies exactly as
it does to the real service.
"""

import threading


class EvaluationService:
    def __init__(self):
        self._lock = threading.Lock()
        self._tasks = {}
        self._workers = []

    def sneak(self, task_id, task):
        self._tasks[task_id] = task  # not under the lock

    def read_racy(self):
        return len(self._workers)  # reads race with the dispatcher too

    def escape_via_closure(self):
        with self._lock:
            def later():
                return self._tasks.popitem()  # closure runs unlocked
            return later
