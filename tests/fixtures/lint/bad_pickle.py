"""REP005 bad fixture: pool-boundary class with unpicklable members."""

import threading


class _MatrixProgram:
    def __init__(self, layers, path):
        self.layers = layers
        self.select = lambda row: row[0]
        self.guard = threading.Lock()
        self.log = open(path, "a")
