"""REP002 bad fixture: SharedMemory creates without paired release."""

from multiprocessing.shared_memory import SharedMemory


def leak_local(size):
    block = SharedMemory(create=True, size=size)
    return block.name  # the segment object is dropped; nothing releases it


def leak_discarded(size):
    SharedMemory(create=True, size=size)
    return size
