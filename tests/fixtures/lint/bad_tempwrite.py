"""REP006 bad fixture: temp artifacts with no cleanup on the failure path."""

import json
import os
import tempfile


def publish_without_cleanup(payload, target):
    # os.replace consumes the temp file on success, but any exception
    # between mkstemp and replace leaves it behind forever.
    fd, tmp_path = tempfile.mkstemp(dir=os.path.dirname(target))
    with os.fdopen(fd, "w") as handle:
        json.dump(payload, handle)
    os.replace(tmp_path, target)


def stage_dir_without_cleanup(directory):
    # Never published *and* never removed: pure litter.
    tmpdir = tempfile.mkdtemp(dir=directory)
    return tmpdir
