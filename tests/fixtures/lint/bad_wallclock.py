"""REP004 bad fixture: wall-clock arithmetic for deadlines."""

import time


def wait_until(timeout):
    deadline = time.time() + timeout
    while time.time() < deadline:
        pass


def stamp_due(job, grace):
    job.due_at = time.time() + grace
