"""REP001 bad fixture: bare asserts in an engine-path module."""


def dispatch(queue):
    assert queue, "queue must not be empty"
    item = queue.pop()
    assert item is not None
    return item
