"""REP001 good fixture: explicit raises survive ``python -O``."""


def dispatch(queue):
    if not queue:
        raise ValueError("queue must not be empty")
    item = queue.pop()
    if item is None:
        raise AssertionError("queue yielded None")
    return item
