"""REP003 good fixture: every guarded access is under ``with self._lock``."""

import threading


class EvaluationService:
    def __init__(self):
        self._lock = threading.Lock()
        self._tasks = {}
        self._workers = []
        self._closing = False  # unguarded field: not in the registry

    def submit(self, task_id, task):
        with self._lock:
            self._tasks[task_id] = task

    def snapshot(self):
        with self._lock:
            return dict(self._tasks), list(self._workers)

    def _dispatch(self, task):
        # Registered lock-held helper: callers hold self._lock already.
        self._tasks[id(task)] = task

    def fast_path(self):
        return self._closing  # benign: field is outside the guarded set
