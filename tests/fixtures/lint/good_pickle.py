"""REP005 good fixture: pool-boundary class keeps picklable state only."""


def _first_column(row):
    return row[0]


class _MatrixProgram:
    def __init__(self, layers, path):
        self.layers = layers
        self.select = _first_column  # module-level function pickles fine
        self.log_path = path  # reopen in the worker instead of shipping a handle
