"""REP002 good fixture: lexical pairing and ownership transfer."""

from multiprocessing.shared_memory import SharedMemory


def paired(size):
    block = SharedMemory(create=True, size=size)
    try:
        return bytes(block.buf[:size])
    finally:
        block.close()
        block.unlink()


class Owner:
    def acquire(self, size):
        block = SharedMemory(create=True, size=size)
        self.block = block  # ownership transferred to the release site below

    def release(self):
        self.block.close()
        self.block.unlink()
