"""REP006 good fixture: every temp artifact is cleaned up on failure."""

import json
import os
import shutil
import tempfile


def publish_with_cleanup(payload, target):
    fd, tmp_path = tempfile.mkstemp(dir=os.path.dirname(target))
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, target)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def scratch_dir_with_cleanup(work):
    tmpdir = tempfile.mkdtemp()
    try:
        return work(tmpdir)
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
