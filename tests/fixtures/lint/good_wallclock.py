"""REP004 good fixture: monotonic deadlines; plain timestamps are fine."""

import time


def wait_until(timeout):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        pass


def record_started(job):
    job.started_wall = time.time()  # a timestamp, not a deadline


def suppressed_cross_process(dispatched_at):
    # Same-host cross-process stamp: wall clock is the only shared clock.
    return max(0.0, time.time() - dispatched_at)  # statics: ignore[REP004]
