"""Runnable wrapper around :mod:`repro.engine.soak` (see docs/INVARIANTS.md).

Three ways in:

* ``python tests/soak_harness.py [seconds]`` — manual run, aggressive plan,
  report printed as JSON, non-zero exit on any contract violation.
* ``SOAK_SECONDS=120 python tests/soak_harness.py`` — long-form soak; the
  CLI flag wins over the environment variable when both are given.
* imported by ``tests/test_soak.py`` for the pytest short mode.

``repro soak`` (the CLI subcommand) is the packaged equivalent; this file
exists so the soak can run straight from a checkout without installing.
"""

from __future__ import annotations

import json
import os
import sys

from repro.engine.faults import aggressive_plan
from repro.engine.soak import SoakReport, run_soak

DEFAULT_SECONDS = 10.0


def soak_seconds(default: float = DEFAULT_SECONDS) -> float:
    """Soak window length from ``SOAK_SECONDS`` (falls back to ``default``)."""
    raw = os.environ.get("SOAK_SECONDS")
    if raw is None:
        return default
    seconds = float(raw)
    if seconds <= 0:
        raise ValueError(f"SOAK_SECONDS must be > 0, got {raw!r}")
    return seconds


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    seconds = float(argv[0]) if argv else soak_seconds()
    report: SoakReport = run_soak(seconds, fault_plan=aggressive_plan())
    problems = report.problems()
    json.dump(
        {**report.as_dict(), "problems": problems, "ok": not problems},
        sys.stdout,
        indent=2,
    )
    sys.stdout.write("\n")
    return 0 if not problems else 1


if __name__ == "__main__":
    raise SystemExit(main())
