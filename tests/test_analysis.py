"""Tests for the analysis package: sweeps, crossover, energy, fan-in, reports."""

import numpy as np
import pytest

from repro.analysis import (
    analytic_size_sweep,
    crossover_size,
    depth_tradeoff_table,
    exact_size_sweep,
    exponent_crossover_depth,
    exponent_summary,
    fan_in_report,
    format_table,
    measure_circuit_energy,
    split_for_fan_in,
    split_overhead,
    subcubic_exponent,
)
from repro.core.gate_count_model import naive_triangle_gate_count
from repro.core.naive_circuits import build_naive_triangle_circuit
from repro.core.trace_circuit import build_trace_circuit
from repro.fastmm.strassen import strassen_2x2
from repro.triangles.generators import erdos_renyi_adjacency


class TestSweeps:
    def test_exact_sweep_rows(self):
        rows = exact_size_sweep([2, 4], depth_parameter=2, kind="trace")
        assert [row.n for row in rows] == [2, 4]
        assert all(row.size > 0 for row in rows)
        assert rows[1].as_dict()["N"] == 4

    def test_exact_sweep_matmul_baseline_is_cubic(self):
        rows = exact_size_sweep([4], depth_parameter=2, kind="matmul")
        assert rows[0].baseline == 64.0

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            exact_size_sweep([2], kind="nope")

    def test_analytic_sweep_monotone_in_n(self):
        rows = analytic_size_sweep([2 ** 6, 2 ** 8, 2 ** 10], depth_parameter=4, kind="matmul")
        sizes = [row.size for row in rows]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_exponent_summary_on_analytic_sweep(self):
        # Over a large-N window the analytic model's fitted exponent should be
        # close to the predicted omega + c*gamma^d (within the polylog wiggle).
        rows = analytic_size_sweep([2 ** k for k in range(20, 32, 2)], depth_parameter=4, kind="matmul")
        summary = exponent_summary(rows)
        assert summary["predicted_exponent"] < 3.0
        assert abs(summary["fitted_exponent"] - summary["predicted_exponent"]) < 0.25
        assert summary["fitted_exponent"] < summary["cubic"]

    def test_depth_tradeoff_table(self):
        table = depth_tradeoff_table(8, [1, 2, 3], kind="trace", bit_width=1)
        assert len(table) == 3
        assert all(row["depth"] <= row["depth_bound"] for row in table)
        gates = [row["gates"] for row in table]
        assert all(later <= earlier for earlier, later in zip(gates, gates[1:]))
        assert gates[2] < gates[0]


class TestCrossover:
    def test_subcubic_exponent_decreases(self):
        assert subcubic_exponent(depth_parameter=6) < subcubic_exponent(depth_parameter=4) < 3.0

    def test_crossover_depth_for_strassen(self):
        # The paper states d > 3 gives a subcubic exponent; with the exact
        # constants d = 3 is already (barely) below 3.
        assert exponent_crossover_depth() in (3, 4)

    def test_crossover_size_exists_for_d4(self):
        n = crossover_size(4, kind="trace")
        assert n is not None
        # The win is asymptotic: the crossover is astronomically large.
        assert n > 2 ** 100

    def test_no_crossover_for_d1(self):
        assert crossover_size(1, kind="trace", max_exponent=40) is None

    def test_cubic_base_algorithm_rejected(self):
        from repro.fastmm.naive_algorithm import naive_algorithm

        with pytest.raises(ValueError):
            exponent_crossover_depth(naive_algorithm(2))


class TestEnergyAndFanIn:
    def test_energy_report(self, rng):
        circuit = build_naive_triangle_circuit(5, 2)
        inputs = [circuit.encode(erdos_renyi_adjacency(5, 0.5, rng)) for _ in range(4)]
        report = measure_circuit_energy(circuit.circuit, inputs)
        assert report.samples == 4
        assert 0 <= report.min_energy <= report.mean_energy <= report.max_energy <= circuit.circuit.size
        assert 0.0 <= report.mean_fraction_firing <= 1.0
        assert report.as_dict()["samples"] == 4

    def test_energy_requires_inputs(self):
        circuit = build_naive_triangle_circuit(4, 1)
        with pytest.raises(ValueError):
            measure_circuit_energy(circuit.circuit, [])

    def test_fan_in_report(self):
        trace = build_trace_circuit(4, 1, bit_width=1, depth_parameter=2)
        report = fan_in_report(trace.circuit, budget=8)
        assert report.max_fan_in == trace.circuit.max_fan_in
        assert report.gates_over_budget >= 0
        assert report.as_dict()["budget"] == 8

    def test_split_for_fan_in(self):
        pieces = split_for_fan_in(1024, fan_in_budget=1024)
        # 1024^(1/omega) ~ 11.8 rows per piece -> ~87 pieces.
        assert 50 < pieces < 120
        with pytest.raises(ValueError):
            split_for_fan_in(0, 16)
        with pytest.raises(ValueError):
            split_for_fan_in(16, 1)

    def test_split_overhead_structure(self):
        overhead = split_overhead(64, fan_in_budget=4096, depth_parameter=3)
        assert overhead["pieces"] >= 1
        assert overhead["overhead_ratio"] > 0


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 100, "b": 0.001}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]

    def test_empty_table(self):
        assert format_table([]) == "(no rows)"

    def test_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]
