"""Tests for Lemma 3.1 (k-th MSB extraction) and full bit extraction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arithmetic.bit_extract import (
    build_full_extraction,
    build_kth_msb,
    count_full_extraction,
    plan_full_extraction,
)
from repro.circuits.builder import CircuitBuilder
from repro.circuits.simulator import CompiledCircuit
from repro.util.bits import bits


def evaluate_extraction(weights, values, n_bits=None):
    """Build a full-extraction circuit over explicit inputs and run it."""
    builder = CircuitBuilder()
    inputs = builder.allocate_inputs(len(weights))
    nodes = build_full_extraction(builder, list(zip(inputs, weights)), n_bits=n_bits)
    circuit = builder.build()
    node_values = CompiledCircuit(circuit).evaluate(np.array(values)).node_values
    out = 0
    for position, node in enumerate(nodes):
        if node is not None:
            out |= int(node_values[node]) << position
    return out, builder, nodes


class TestKthMsb:
    def test_single_bit_identity(self):
        builder = CircuitBuilder()
        (x,) = builder.allocate_inputs(1)
        node = build_kth_msb(builder, [(x, 1)], l=1, k=1)
        circuit = builder.build()
        assert CompiledCircuit(circuit).evaluate(np.array([1])).node_values[node] == 1
        assert CompiledCircuit(circuit).evaluate(np.array([0])).node_values[node] == 0

    def test_gate_count_matches_lemma(self):
        # Lemma 3.1: 2^k + 1 gates for the k-th most significant bit.
        for k in range(1, 5):
            builder = CircuitBuilder()
            inputs = builder.allocate_inputs(6)
            build_kth_msb(builder, [(i, 1) for i in inputs], l=6, k=k)
            assert builder.size == 2 ** k + 1

    def test_depth_is_two(self):
        builder = CircuitBuilder()
        inputs = builder.allocate_inputs(4)
        build_kth_msb(builder, [(i, 1) for i in inputs], l=3, k=2)
        assert builder.build().depth == 2

    def test_all_bits_of_popcount(self):
        # Extract every bit of the 3-bit sum of 7 input bits.
        builder = CircuitBuilder()
        inputs = builder.allocate_inputs(7)
        terms = [(i, 1) for i in inputs]
        nodes = {k: build_kth_msb(builder, terms, l=3, k=k) for k in (1, 2, 3)}
        circuit = builder.build()
        compiled = CompiledCircuit(circuit)
        for value in range(2 ** 7):
            assignment = np.array([(value >> i) & 1 for i in range(7)])
            popcount = int(assignment.sum())
            node_values = compiled.evaluate(assignment).node_values
            recovered = sum(int(node_values[nodes[k]]) << (3 - k) for k in (1, 2, 3))
            assert recovered == popcount

    def test_invalid_parameters(self):
        builder = CircuitBuilder()
        inputs = builder.allocate_inputs(2)
        with pytest.raises(ValueError):
            build_kth_msb(builder, [(inputs[0], 1)], l=0, k=1)
        with pytest.raises(ValueError):
            build_kth_msb(builder, [(inputs[0], 1)], l=2, k=3)


class TestPlanFullExtraction:
    def test_rejects_nonpositive_weights(self):
        with pytest.raises(ValueError):
            plan_full_extraction([1, 0])
        with pytest.raises(ValueError):
            plan_full_extraction([-1])

    def test_plan_covers_all_bits_by_default(self):
        plan = plan_full_extraction([1] * 5)
        assert plan.n_bits == bits(5)

    def test_zero_bits_are_marked(self):
        # A single term of weight 4 has bits 1 and 2 identically zero.
        plan = plan_full_extraction([4])
        assert plan.bit_plans[0].is_zero
        assert plan.bit_plans[1].is_zero
        assert not plan.bit_plans[2].is_zero

    def test_count_matches_plan(self):
        weights = [1, 2, 3, 7]
        assert count_full_extraction(weights) == plan_full_extraction(weights).total_gates

    def test_gate_count_scales_linearly_in_terms(self):
        # Lemma 3.2's O(w b n): doubling the unit-weight terms should roughly
        # double the gates, not square them.
        small = count_full_extraction([1] * 16)
        large = count_full_extraction([1] * 32)
        assert large < 3 * small


class TestBuildFullExtraction:
    def test_unit_weights_exhaustive(self):
        weights = [1] * 4
        for value in range(16):
            values = [(value >> i) & 1 for i in range(4)]
            got, _, _ = evaluate_extraction(weights, values)
            assert got == sum(values)

    def test_mixed_weights(self, rng):
        weights = [1, 3, 5, 2, 8]
        for _ in range(20):
            values = rng.integers(0, 2, size=5).tolist()
            got, _, _ = evaluate_extraction(weights, values)
            assert got == sum(w * v for w, v in zip(weights, values))

    def test_gate_count_matches_dry_run(self, rng):
        weights = [1, 3, 5, 2, 8]
        _, builder, _ = evaluate_extraction(weights, [1] * 5)
        assert builder.size == count_full_extraction(weights)

    def test_truncated_extraction(self, rng):
        weights = [3, 6, 1, 1]
        for _ in range(10):
            values = rng.integers(0, 2, size=4).tolist()
            got, _, nodes = evaluate_extraction(weights, values, n_bits=2)
            assert len(nodes) == 2
            true = sum(w * v for w, v in zip(weights, values))
            assert got == true % 4

    def test_depth_is_two(self):
        builder = CircuitBuilder()
        inputs = builder.allocate_inputs(6)
        build_full_extraction(builder, [(i, 1) for i in inputs])
        assert builder.build().depth == 2

    @settings(max_examples=40, deadline=None)
    @given(
        weights=st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=6),
        data=st.data(),
    )
    def test_extraction_property(self, weights, data):
        values = data.draw(
            st.lists(st.integers(0, 1), min_size=len(weights), max_size=len(weights))
        )
        got, _, _ = evaluate_extraction(weights, values)
        assert got == sum(w * v for w, v in zip(weights, values))
