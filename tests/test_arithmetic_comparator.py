"""Tests for the single-gate comparator and range membership circuits."""

import numpy as np
import pytest

from repro.arithmetic.comparator import build_ge_comparison, build_range_membership
from repro.arithmetic.signed import Rep, SignedValue
from repro.circuits.builder import CircuitBuilder
from repro.circuits.simulator import CompiledCircuit


def value_over_inputs(builder, pos_weights, neg_weights):
    n = len(pos_weights) + len(neg_weights)
    wires = builder.allocate_inputs(n)
    pos = Rep.from_terms(list(zip(wires[: len(pos_weights)], pos_weights)))
    neg = Rep.from_terms(list(zip(wires[len(pos_weights) :], neg_weights)))
    return SignedValue(pos, neg), wires


class TestGeComparison:
    def test_single_gate(self):
        builder = CircuitBuilder()
        value, _ = value_over_inputs(builder, [3, 2], [4])
        build_ge_comparison(builder, value, 1)
        assert builder.size == 1
        assert builder.build().depth == 1

    @pytest.mark.parametrize("tau", [-5, 0, 1, 3, 6])
    def test_decision_correct_for_all_inputs(self, tau):
        builder = CircuitBuilder()
        value, wires = value_over_inputs(builder, [3, 2], [4])
        gate = build_ge_comparison(builder, value, tau)
        circuit = builder.build()
        compiled = CompiledCircuit(circuit)
        for assignment in range(2 ** 3):
            bits = np.array([(assignment >> i) & 1 for i in range(3)])
            actual = 3 * bits[0] + 2 * bits[1] - 4 * bits[2]
            got = compiled.evaluate(bits).node_values[gate]
            assert got == (1 if actual >= tau else 0)

    def test_empty_value_compares_zero(self):
        builder = CircuitBuilder()
        builder.allocate_inputs(1)
        gate_true = build_ge_comparison(builder, SignedValue.zero(), 0)
        gate_false = build_ge_comparison(builder, SignedValue.zero(), 1)
        circuit = builder.build()
        values = circuit.evaluate_slow([0])
        assert values[gate_true] == 1
        assert values[gate_false] == 0


class TestRangeMembership:
    def test_rejects_empty_range(self):
        builder = CircuitBuilder()
        value, _ = value_over_inputs(builder, [1], [])
        with pytest.raises(ValueError):
            build_range_membership(builder, value, 3, 3)

    def test_window_decision(self):
        builder = CircuitBuilder()
        value, _ = value_over_inputs(builder, [1, 2, 4], [])
        gate = build_range_membership(builder, value, 2, 5)
        circuit = builder.build()
        compiled = CompiledCircuit(circuit)
        for assignment in range(8):
            bits = np.array([(assignment >> i) & 1 for i in range(3)])
            total = int(bits[0] + 2 * bits[1] + 4 * bits[2])
            got = compiled.evaluate(bits).node_values[gate]
            assert got == (1 if 2 <= total < 5 else 0)

    def test_depth_two(self):
        builder = CircuitBuilder()
        value, _ = value_over_inputs(builder, [1, 1], [])
        build_range_membership(builder, value, 1, 2)
        assert builder.build().depth == 2
