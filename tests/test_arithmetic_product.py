"""Tests for Lemma 3.3: depth-1 product representations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arithmetic.product import (
    build_signed_product,
    build_unsigned_product_rep,
    count_signed_product,
    count_unsigned_product_rep,
)
from repro.arithmetic.signed import BinaryNumber, SignedBinaryNumber
from repro.circuits.builder import CircuitBuilder
from repro.circuits.simulator import CompiledCircuit
from repro.util.encoding import encode_integer


def unsigned_inputs(builder, values, bit_width):
    wires = builder.allocate_inputs(len(values) * bit_width)
    handles, assignment = [], np.zeros(len(wires), dtype=np.int8)
    for index, value in enumerate(values):
        chunk = wires[index * bit_width : (index + 1) * bit_width]
        handles.append(BinaryNumber.from_bits(chunk))
        for offset in range(bit_width):
            assignment[index * bit_width + offset] = (value >> offset) & 1
    return handles, assignment


def signed_number_inputs(builder, values, bit_width):
    wires = builder.allocate_inputs(len(values) * 2 * bit_width)
    handles, assignment = [], np.zeros(len(wires), dtype=np.int8)
    for index, value in enumerate(values):
        base = index * 2 * bit_width
        pos = wires[base : base + bit_width]
        neg = wires[base + bit_width : base + 2 * bit_width]
        handles.append(SignedBinaryNumber.from_input_bits(pos, neg))
        assignment[base : base + 2 * bit_width] = encode_integer(value, bit_width)
    return handles, assignment


class TestUnsignedProduct:
    def test_two_factor_exhaustive(self):
        for x in range(8):
            for y in range(8):
                builder = CircuitBuilder()
                handles, assignment = unsigned_inputs(builder, [x, y], 3)
                rep = build_unsigned_product_rep(builder, handles)
                circuit = builder.build()
                if circuit.size == 0:
                    assert x * y == 0 or len(handles) == 1
                node_values = CompiledCircuit(circuit).evaluate(assignment).node_values
                assert rep.value(node_values) == x * y

    def test_three_factor_cases(self, rng):
        for _ in range(15):
            x, y, z = (int(v) for v in rng.integers(0, 8, size=3))
            builder = CircuitBuilder()
            handles, assignment = unsigned_inputs(builder, [x, y, z], 3)
            rep = build_unsigned_product_rep(builder, handles)
            node_values = CompiledCircuit(builder.build()).evaluate(assignment).node_values
            assert rep.value(node_values) == x * y * z

    def test_gate_count_is_product_of_bit_counts(self):
        # Lemma 3.3: m^3 gates for three m-bit factors.
        builder = CircuitBuilder()
        handles, _ = unsigned_inputs(builder, [7, 7, 7], 3)
        build_unsigned_product_rep(builder, handles)
        assert builder.size == 27
        assert count_unsigned_product_rep([3, 3, 3]) == 27

    def test_depth_is_one(self):
        builder = CircuitBuilder()
        handles, _ = unsigned_inputs(builder, [3, 3], 2)
        build_unsigned_product_rep(builder, handles)
        assert builder.build().depth == 1

    def test_single_factor_needs_no_gates(self):
        builder = CircuitBuilder()
        handles, assignment = unsigned_inputs(builder, [5], 3)
        rep = build_unsigned_product_rep(builder, handles)
        assert builder.size == 0
        assert rep.value({w: int(v) for w, v in enumerate(assignment)}) == 5

    def test_zero_factor_short_circuits(self):
        builder = CircuitBuilder()
        handles, _ = unsigned_inputs(builder, [3], 2)
        rep = build_unsigned_product_rep(builder, handles + [BinaryNumber.zero()])
        assert rep.is_zero
        assert builder.size == 0
        assert count_unsigned_product_rep([2, 0]) == 0

    def test_empty_factor_list_rejected(self):
        with pytest.raises(ValueError):
            build_unsigned_product_rep(CircuitBuilder(), [])
        with pytest.raises(ValueError):
            count_unsigned_product_rep([])


class TestSignedProduct:
    @pytest.mark.parametrize(
        "values", [(3, -2), (-3, -2), (0, 5), (-7, 7), (3, 2, -1), (-1, -1, -1), (0, -4, 6)]
    )
    def test_signed_products(self, values):
        builder = CircuitBuilder()
        handles, assignment = signed_number_inputs(builder, list(values), 3)
        result = build_signed_product(builder, handles)
        circuit = builder.build()
        expected = 1
        for v in values:
            expected *= v
        if circuit.size == 0:
            assert result.value({w: int(v) for w, v in enumerate(assignment)}) == expected
            return
        node_values = CompiledCircuit(circuit).evaluate(assignment).node_values
        assert result.value(node_values) == expected

    def test_count_matches_build(self):
        builder = CircuitBuilder()
        handles, _ = signed_number_inputs(builder, [5, -3, 2], 3)
        build_signed_product(builder, handles)
        assert builder.size == count_signed_product(handles)

    def test_depth_is_one(self):
        builder = CircuitBuilder()
        handles, _ = signed_number_inputs(builder, [5, -3], 3)
        build_signed_product(builder, handles)
        assert builder.build().depth == 1

    def test_eightfold_blowup_bound_for_triple_products(self):
        # The paper's "Negative numbers" paragraph: at most 8x the unsigned gates.
        builder = CircuitBuilder()
        handles, _ = signed_number_inputs(builder, [7, 7, 7], 3)
        build_signed_product(builder, handles)
        assert builder.size <= 8 * 27

    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(st.integers(min_value=-7, max_value=7), min_size=2, max_size=3))
    def test_signed_product_property(self, values):
        builder = CircuitBuilder()
        handles, assignment = signed_number_inputs(builder, values, 3)
        result = build_signed_product(builder, handles)
        circuit = builder.build()
        expected = 1
        for v in values:
            expected *= v
        node_values = (
            CompiledCircuit(circuit).evaluate(assignment).node_values
            if circuit.size
            else {w: int(v) for w, v in enumerate(assignment)}
        )
        assert result.value(node_values) == expected
