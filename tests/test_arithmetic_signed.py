"""Tests for the wire-level number representations (Rep, SignedValue, BinaryNumber)."""

import pytest

from repro.arithmetic.signed import BinaryNumber, Rep, SignedBinaryNumber, SignedValue


class TestRep:
    def test_from_terms_merges_and_drops_zero(self):
        rep = Rep.from_terms([(3, 2), (3, 5), (4, 0)])
        assert rep.terms == ((3, 7),)

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(ValueError):
            Rep(((1, 0),))
        with pytest.raises(ValueError):
            Rep(((1, -2),))

    def test_max_value_and_zero(self):
        assert Rep.zero().is_zero
        assert Rep.zero().max_value == 0
        rep = Rep.from_terms([(0, 3), (1, 4)])
        assert rep.max_value == 7
        assert not rep.is_zero

    def test_scaled(self):
        rep = Rep.from_terms([(0, 3)])
        assert rep.scaled(2).terms == ((0, 6),)
        with pytest.raises(ValueError):
            rep.scaled(0)

    def test_value(self):
        rep = Rep.from_terms([(0, 3), (2, 4)])
        assert rep.value({0: 1, 2: 0}) == 3
        assert rep.value({0: 1, 2: 1}) == 7


class TestSignedValue:
    def test_negate_swaps_parts(self):
        value = SignedValue(Rep.from_terms([(0, 1)]), Rep.from_terms([(1, 2)]))
        negated = value.negated()
        assert negated.pos == value.neg and negated.neg == value.pos

    def test_scaled_handles_signs(self):
        value = SignedValue(Rep.from_terms([(0, 1)]), Rep.from_terms([(1, 2)]))
        doubled = value.scaled(2)
        assert doubled.pos.terms == ((0, 2),) and doubled.neg.terms == ((1, 4),)
        flipped = value.scaled(-1)
        assert flipped.pos == value.neg and flipped.neg == value.pos
        assert value.scaled(0).is_zero

    def test_value_and_bounds(self):
        value = SignedValue(Rep.from_terms([(0, 5)]), Rep.from_terms([(1, 3)]))
        assert value.value({0: 1, 1: 1}) == 2
        assert value.max_abs == 5
        assert SignedValue.zero().is_zero


class TestBinaryNumber:
    def test_from_bits(self):
        number = BinaryNumber.from_bits([10, 11, 12])
        assert number.bit_positions == (0, 1, 2)
        assert number.max_value == 7
        assert number.width == 3

    def test_value(self):
        number = BinaryNumber.from_bits([10, 11, 12])
        assert number.value({10: 1, 11: 0, 12: 1}) == 5

    def test_to_rep_power_of_two_weights(self):
        number = BinaryNumber((0, 2), (5, 6), 3)
        assert number.to_rep().terms == ((5, 1), (6, 4))

    def test_misaligned_fields_rejected(self):
        with pytest.raises(ValueError):
            BinaryNumber((0, 1), (5,), 2)

    def test_duplicate_positions_rejected(self):
        with pytest.raises(ValueError):
            BinaryNumber((0, 0), (5, 6), 2)

    def test_zero(self):
        zero = BinaryNumber.zero()
        assert zero.n_bits == 0 and zero.max_value == 0


class TestSignedBinaryNumber:
    def test_from_input_bits_and_value(self):
        number = SignedBinaryNumber.from_input_bits([0, 1], [2, 3])
        values = {0: 1, 1: 0, 2: 0, 3: 1}
        assert number.value(values) == 1 - 2

    def test_to_signed_value(self):
        number = SignedBinaryNumber.from_input_bits([0], [1])
        signed = number.to_signed_value()
        assert signed.pos.terms == ((0, 1),) and signed.neg.terms == ((1, 1),)

    def test_negated(self):
        number = SignedBinaryNumber.from_input_bits([0], [1])
        assert number.negated().pos == number.neg

    def test_max_abs(self):
        number = SignedBinaryNumber.from_input_bits([0, 1, 2], [3])
        assert number.max_abs == 7
