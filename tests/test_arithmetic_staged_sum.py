"""Tests for the staged (depth-2j) extraction used by Theorem 4.1."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arithmetic.staged_sum import (
    build_staged_extraction,
    count_staged_extraction,
    staged_chunk_sizes,
)
from repro.arithmetic.weighted_sum import build_unsigned_sum, count_unsigned_sum
from repro.circuits.builder import CircuitBuilder
from repro.circuits.simulator import CompiledCircuit
from repro.util.bits import bits


class TestChunkSizes:
    def test_even_split(self):
        assert staged_chunk_sizes(6, 3) == [2, 2, 2]

    def test_uneven_split_puts_extra_first(self):
        assert staged_chunk_sizes(7, 3) == [3, 2, 2]

    def test_more_stages_than_bits(self):
        assert staged_chunk_sizes(2, 5) == [1, 1]

    def test_zero_width(self):
        assert staged_chunk_sizes(0, 3) == []

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            staged_chunk_sizes(-1, 2)
        with pytest.raises(ValueError):
            staged_chunk_sizes(4, 0)

    @given(st.integers(min_value=0, max_value=64), st.integers(min_value=1, max_value=10))
    def test_chunks_cover_width(self, width, stages):
        chunks = staged_chunk_sizes(width, stages)
        assert sum(chunks) == width
        assert all(c >= 1 for c in chunks) or width == 0


def run_staged(weights, values, stages):
    builder = CircuitBuilder()
    inputs = builder.allocate_inputs(len(weights))
    nodes = build_staged_extraction(builder, list(zip(inputs, weights)), stages)
    circuit = builder.build()
    node_values = CompiledCircuit(circuit).evaluate(np.array(values)).node_values
    got = sum((int(node_values[node]) << pos) for pos, node in enumerate(nodes) if node is not None)
    return got, builder


class TestStagedExtraction:
    @pytest.mark.parametrize("stages", [1, 2, 3, 4])
    def test_unit_weights_exhaustive(self, stages):
        weights = [1] * 5
        for value in range(32):
            values = [(value >> i) & 1 for i in range(5)]
            got, _ = run_staged(weights, values, stages)
            assert got == sum(values), (stages, values)

    @pytest.mark.parametrize("stages", [2, 3])
    def test_mixed_weights(self, rng, stages):
        weights = [1, 5, 9, 2, 4, 13]
        for _ in range(15):
            values = rng.integers(0, 2, size=len(weights)).tolist()
            got, _ = run_staged(weights, values, stages)
            assert got == sum(w * v for w, v in zip(weights, values))

    def test_depth_is_two_per_stage(self):
        weights = [1] * 20
        for stages in (1, 2, 3):
            builder = CircuitBuilder()
            inputs = builder.allocate_inputs(len(weights))
            build_staged_extraction(builder, list(zip(inputs, weights)), stages)
            width = bits(sum(weights))
            expected_stages = min(stages, width)
            assert builder.build().depth == 2 * expected_stages

    def test_count_matches_build(self):
        weights = [1, 2, 7, 7, 3]
        for stages in (1, 2, 3):
            builder = CircuitBuilder()
            inputs = builder.allocate_inputs(len(weights))
            build_staged_extraction(builder, list(zip(inputs, weights)), stages)
            assert builder.size == count_staged_extraction(weights, stages)

    def test_rejects_nonpositive_weights(self):
        builder = CircuitBuilder()
        inputs = builder.allocate_inputs(1)
        with pytest.raises(ValueError):
            build_staged_extraction(builder, [(inputs[0], -1)], 2)

    def test_staging_reduces_gates_for_wide_sums(self):
        # This is the whole point of Theorem 4.1: more depth, fewer gates.
        weights = [1] * 500
        depth2 = count_unsigned_sum(weights, stages=1)
        depth6 = count_staged_extraction(weights, 3)
        assert depth6 < depth2

    def test_via_build_unsigned_sum_dispatch(self, rng):
        weights = [3, 1, 4, 1, 5]
        values = rng.integers(0, 2, size=5).tolist()
        builder = CircuitBuilder()
        inputs = builder.allocate_inputs(5)
        number = build_unsigned_sum(builder, list(zip(inputs, weights)), stages=2)
        node_values = CompiledCircuit(builder.build()).evaluate(np.array(values)).node_values
        assert number.value(node_values) == sum(w * v for w, v in zip(weights, values))

    @settings(max_examples=25, deadline=None)
    @given(
        weights=st.lists(st.integers(min_value=1, max_value=15), min_size=1, max_size=6),
        stages=st.integers(min_value=1, max_value=4),
        data=st.data(),
    )
    def test_staged_property(self, weights, stages, data):
        values = data.draw(
            st.lists(st.integers(0, 1), min_size=len(weights), max_size=len(weights))
        )
        got, _ = run_staged(weights, values, stages)
        assert got == sum(w * v for w, v in zip(weights, values))
