"""Tests for Lemma 3.2: signed weighted-sum circuits."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arithmetic.signed import SignedBinaryNumber
from repro.arithmetic.weighted_sum import (
    build_signed_sum,
    build_unsigned_sum,
    count_signed_sum,
    count_unsigned_sum,
    flatten_terms,
    split_signed_terms,
)
from repro.circuits.builder import CircuitBuilder
from repro.circuits.simulator import CompiledCircuit
from repro.util.encoding import MatrixEncoding


def signed_inputs(builder, values, bit_width):
    """Allocate input wires for the given signed integers; return handles + assignment."""
    wires = builder.allocate_inputs(len(values) * 2 * bit_width)
    encoding = MatrixEncoding(n=1, bit_width=bit_width)
    handles = []
    assignment = np.zeros(len(wires), dtype=np.int8)
    from repro.util.encoding import encode_integer

    for index, value in enumerate(values):
        base = index * 2 * bit_width
        pos_bits = wires[base : base + bit_width]
        neg_bits = wires[base + bit_width : base + 2 * bit_width]
        handles.append(SignedBinaryNumber.from_input_bits(pos_bits, neg_bits))
        assignment[base : base + 2 * bit_width] = encode_integer(value, bit_width)
    return handles, assignment


class TestSplitSignedTerms:
    def test_split_matches_paper_definition(self):
        builder = CircuitBuilder()
        handles, _ = signed_inputs(builder, [3, -2], bit_width=2)
        items = [(handles[0].to_signed_value(), 2), (handles[1].to_signed_value(), -3)]
        pos, neg = split_signed_terms(items)
        # s+ gets +2*x0_pos and +3*x1_neg ; s- gets 2*x0_neg and 3*x1_pos.
        pos_weights = sorted(w for _, w in pos)
        neg_weights = sorted(w for _, w in neg)
        assert pos_weights == sorted([2, 4, 3, 6])
        assert neg_weights == sorted([2, 4, 3, 6])

    def test_zero_weight_dropped(self):
        builder = CircuitBuilder()
        handles, _ = signed_inputs(builder, [1], bit_width=1)
        pos, neg = split_signed_terms([(handles[0].to_signed_value(), 0)])
        assert pos == [] and neg == []

    def test_flatten_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            flatten_terms([(SignedBinaryNumber.from_input_bits([0], [1]).to_signed_value().pos, -1)])


class TestUnsignedSum:
    def test_empty_sum_is_zero(self):
        builder = CircuitBuilder()
        builder.allocate_inputs(1)
        result = build_unsigned_sum(builder, [])
        assert result.n_bits == 0
        assert builder.size == 0

    def test_count_matches_build(self):
        builder = CircuitBuilder()
        inputs = builder.allocate_inputs(5)
        weights = [1, 2, 3, 4, 5]
        build_unsigned_sum(builder, list(zip(inputs, weights)))
        assert builder.size == count_unsigned_sum(weights)


class TestSignedSum:
    @pytest.mark.parametrize(
        "values,weights",
        [
            ([3, -2], [1, 1]),
            ([3, -2, 1], [1, -1, 2]),
            ([0, 0], [5, -5]),
            ([-7, -7], [1, 1]),
            ([5], [-3]),
        ],
    )
    def test_exhaustive_small_cases(self, values, weights):
        builder = CircuitBuilder()
        handles, assignment = signed_inputs(builder, values, bit_width=3)
        items = [(h.to_signed_value(), w) for h, w in zip(handles, weights)]
        result = build_signed_sum(builder, items)
        circuit = builder.build()
        node_values = CompiledCircuit(circuit).evaluate(assignment).node_values
        expected = sum(v * w for v, w in zip(values, weights))
        assert result.value(node_values) == expected

    def test_depth_is_two(self):
        builder = CircuitBuilder()
        handles, _ = signed_inputs(builder, [1, -2, 3], bit_width=2)
        build_signed_sum(builder, [(h.to_signed_value(), w) for h, w in zip(handles, (1, 2, -1))])
        assert builder.build().depth == 2

    def test_count_matches_build(self):
        builder = CircuitBuilder()
        handles, _ = signed_inputs(builder, [1, -2, 3], bit_width=2)
        items = [(h.to_signed_value(), w) for h, w in zip(handles, (1, 2, -1))]
        build_signed_sum(builder, items)
        assert builder.size == count_signed_sum(items)

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(st.integers(min_value=-7, max_value=7), min_size=1, max_size=5),
        data=st.data(),
    )
    def test_signed_sum_property(self, values, data):
        weights = data.draw(
            st.lists(
                st.integers(min_value=-4, max_value=4),
                min_size=len(values),
                max_size=len(values),
            )
        )
        builder = CircuitBuilder()
        handles, assignment = signed_inputs(builder, values, bit_width=3)
        items = [(h.to_signed_value(), w) for h, w in zip(handles, weights)]
        result = build_signed_sum(builder, items)
        circuit = builder.build()
        if circuit.size == 0:
            assert all(w == 0 for w in weights)
            return
        node_values = CompiledCircuit(circuit).evaluate(assignment).node_values
        assert result.value(node_values) == sum(v * w for v, w in zip(values, weights))
