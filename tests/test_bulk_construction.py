"""Equivalence of the bulk/stamped construction path and the per-gate path.

The vectorized construction pipeline (columnar store + bulk ``add_gates`` +
gadget template stamping) must be a pure performance change: for every
construction, ``vectorize=True`` and ``vectorize=False`` have to produce
circuits with bit-identical structure (equal ``structural_hash``, which
covers input count, every gate's sources/weights/threshold in order, and the
declared outputs).  These tests check that on randomized gadget soups and on
the full matmul/trace constructions.
"""

from hypothesis import given, settings, strategies as st

from repro.arithmetic.comparator import build_ge_comparison
from repro.arithmetic.product import build_signed_products
from repro.arithmetic.signed import SignedBinaryNumber
from repro.arithmetic.weighted_sum import build_signed_sums
from repro.circuits.builder import CircuitBuilder
from repro.core.matmul_circuit import build_matmul_circuit
from repro.core.naive_circuits import (
    build_naive_matmul_circuit,
    build_naive_trace_circuit,
    build_naive_triangle_circuit,
)
from repro.core.trace_circuit import build_trace_circuit
from repro.engine import Engine


# --------------------------------------------------------------------------- #
# Randomized gadget programs, replayed on both builder modes.
# --------------------------------------------------------------------------- #


def _draw_signed_number(data, n_inputs, label):
    """A SignedBinaryNumber over random (possibly overlapping) input wires."""
    n_bits = data.draw(st.integers(min_value=0, max_value=3), label=f"{label}/bits")
    wires = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=n_inputs - 1),
            min_size=2 * n_bits,
            max_size=2 * n_bits,
        ),
        label=f"{label}/wires",
    )
    return SignedBinaryNumber.from_input_bits(wires[:n_bits], wires[n_bits:])


def _draw_program(data):
    """A random sequence of gadget invocations (shared by both replays)."""
    n_inputs = data.draw(st.integers(min_value=2, max_value=6), label="n_inputs")
    numbers = [
        _draw_signed_number(data, n_inputs, f"value{i}")
        for i in range(data.draw(st.integers(min_value=2, max_value=4), label="n_values"))
    ]
    ops = []
    for i in range(data.draw(st.integers(min_value=1, max_value=4), label="n_ops")):
        kind = data.draw(st.sampled_from(["sum", "product"]), label=f"op{i}")
        if kind == "sum":
            # Several instances per call to exercise grouping + stamping.
            count = data.draw(st.integers(min_value=1, max_value=3), label=f"op{i}/count")
            picks = [
                [
                    (
                        data.draw(
                            st.integers(min_value=0, max_value=len(numbers) - 1),
                            label=f"op{i}/{j}/value",
                        ),
                        data.draw(
                            st.integers(min_value=-3, max_value=3).filter(bool),
                            label=f"op{i}/{j}/weight",
                        ),
                    )
                    for j in range(
                        data.draw(
                            st.integers(min_value=1, max_value=3),
                            label=f"op{i}/terms",
                        )
                    )
                ]
                for _ in range(count)
            ]
            stages = data.draw(st.integers(min_value=1, max_value=2), label=f"op{i}/stages")
            ops.append(("sum", picks, stages))
        else:
            count = data.draw(st.integers(min_value=1, max_value=3), label=f"op{i}/count")
            picks = [
                [
                    data.draw(
                        st.integers(min_value=0, max_value=len(numbers) - 1),
                        label=f"op{i}/{j}/factor",
                    )
                    # Repeated factor indices are allowed on purpose: they
                    # trigger the duplicate-parameter legacy fallback.
                    for j in range(
                        data.draw(
                            st.integers(min_value=1, max_value=3),
                            label=f"op{i}/factors",
                        )
                    )
                ]
                for _ in range(count)
            ]
            ops.append(("product", picks, None))
    tau = data.draw(st.integers(min_value=-4, max_value=4), label="tau")
    return n_inputs, numbers, ops, tau


def _replay(n_inputs, numbers, ops, tau, vectorize):
    builder = CircuitBuilder(name="gadget-soup", vectorize=vectorize)
    builder.allocate_inputs(n_inputs)
    pool = list(numbers)
    last_signed_value = None
    for kind, picks, stages in ops:
        if kind == "sum":
            items_list = [
                [(pool[index].to_signed_value(), weight) for index, weight in instance]
                for instance in picks
            ]
            pool.extend(
                build_signed_sums(builder, items_list, stages=stages, tag="soup/sum")
            )
        else:
            factors_list = [[pool[index] for index in instance] for instance in picks]
            values = build_signed_products(builder, factors_list, tag="soup/prod")
            last_signed_value = values[-1]
    if last_signed_value is not None:
        output = build_ge_comparison(builder, last_signed_value, tau, tag="soup/out")
        builder.set_outputs([output])
    return builder.build(), builder.tag_counts()


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_random_gadgets_bit_identical(data):
    n_inputs, numbers, ops, tau = _draw_program(data)
    fast, fast_tags = _replay(n_inputs, numbers, ops, tau, vectorize=True)
    legacy, legacy_tags = _replay(n_inputs, numbers, ops, tau, vectorize=False)
    assert fast.size == legacy.size
    assert fast.structural_hash() == legacy.structural_hash()
    assert fast.stats() == legacy.stats()
    assert fast_tags == legacy_tags
    # Depth bookkeeping must agree gate by gate, not just in the maximum.
    assert fast.gates_by_depth() == legacy.gates_by_depth()


@given(
    n=st.sampled_from([2, 4]),
    stages=st.integers(min_value=1, max_value=2),
    bit_width=st.integers(min_value=1, max_value=2),
)
@settings(max_examples=6, deadline=None)
def test_matmul_construction_bit_identical(n, stages, bit_width):
    fast = build_matmul_circuit(
        n, bit_width=bit_width, depth_parameter=1, stages=stages, vectorize=True
    )
    legacy = build_matmul_circuit(
        n, bit_width=bit_width, depth_parameter=1, stages=stages, vectorize=False
    )
    assert fast.circuit.structural_hash() == legacy.circuit.structural_hash()
    assert fast.circuit.stats() == legacy.circuit.stats()


def test_trace_and_naive_constructions_bit_identical(rng):
    pairs = [
        (
            build_trace_circuit(4, 10, depth_parameter=2, vectorize=True).circuit,
            build_trace_circuit(4, 10, depth_parameter=2, vectorize=False).circuit,
        ),
        (
            build_naive_matmul_circuit(4, stages=2, vectorize=True).circuit,
            build_naive_matmul_circuit(4, stages=2, vectorize=False).circuit,
        ),
        (
            build_naive_trace_circuit(3, 5, vectorize=True).circuit,
            build_naive_trace_circuit(3, 5, vectorize=False).circuit,
        ),
        (
            build_naive_triangle_circuit(6, 2, vectorize=True).circuit,
            build_naive_triangle_circuit(6, 2, vectorize=False).circuit,
        ),
    ]
    engine = Engine()
    for fast, legacy in pairs:
        assert fast.structural_hash() == legacy.structural_hash()
        batch = rng.integers(0, 2, size=(fast.n_inputs, 16))
        fast_result = engine.evaluate(fast, batch)
        legacy_result = engine.evaluate(legacy, batch)
        assert (fast_result.outputs == legacy_result.outputs).all()
        assert (fast_result.node_values == legacy_result.node_values).all()


def test_trace_circuit_evaluates_correctly_when_vectorized(rng):
    trace = build_trace_circuit(4, 10, depth_parameter=2, vectorize=True)
    for _ in range(5):
        matrix = rng.integers(-2, 3, size=(4, 4))
        assert trace.evaluate(matrix) == trace.reference(matrix)
