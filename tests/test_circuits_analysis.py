"""Tests for repro.circuits.analysis."""

import numpy as np

from repro.circuits.analysis import (
    fan_in_histogram,
    layer_profile,
    measure_energy,
    tag_breakdown,
    weight_magnitude_histogram,
)
from repro.circuits.builder import CircuitBuilder


def build_layered_circuit():
    builder = CircuitBuilder()
    inputs = builder.allocate_inputs(3)
    a = builder.add_gate(inputs, [1, 1, 1], 1, tag="first")
    b = builder.add_gate(inputs, [1, 1, 1], 2, tag="first")
    c = builder.add_gate([a, b], [1, -2], 0, tag="second")
    builder.set_outputs([c])
    return builder.build()


class TestProfiles:
    def test_layer_profile(self):
        profile = layer_profile(build_layered_circuit())
        assert profile.layers == {1: 2, 2: 1}
        assert profile.edges_per_layer == {1: 6, 2: 2}
        assert profile.depth == 2
        rows = profile.as_rows()
        assert rows[0] == {"layer": 1, "gates": 2, "edges": 6}

    def test_fan_in_histogram(self):
        assert fan_in_histogram(build_layered_circuit()) == {3: 2, 2: 1}

    def test_weight_magnitude_histogram(self):
        histogram = weight_magnitude_histogram(build_layered_circuit())
        assert histogram == {1: 2, 2: 1}  # bits(1)=1 twice, bits(2)=2 once

    def test_tag_breakdown(self):
        assert tag_breakdown(build_layered_circuit()) == {"first": 2, "second": 1}


class TestEnergy:
    def test_energy_per_input(self):
        circuit = build_layered_circuit()
        inputs = np.array([[0, 0, 0], [1, 0, 0], [1, 1, 1]]).T
        energies = measure_energy(circuit, inputs)
        # all-zero: only c fires (0 >= 0); [1,0,0]: a and c fire; [1,1,1]: a and b fire.
        assert energies.tolist() == [1, 2, 2]
