"""Tests for repro.circuits.builder and repro.circuits.counting."""

import pytest

from repro.circuits.builder import CircuitBuilder
from repro.circuits.counting import CountingBuilder


class TestCircuitBuilder:
    def test_input_allocation_blocks(self):
        builder = CircuitBuilder()
        a = builder.allocate_inputs(3, "A")
        b = builder.allocate_inputs(2, "B")
        assert a == [0, 1, 2]
        assert b == [3, 4]
        assert builder.input_block("A") == a
        assert builder.n_inputs == 5

    def test_inputs_frozen_after_first_gate(self):
        builder = CircuitBuilder()
        builder.allocate_inputs(1)
        builder.add_gate([0], [1], 1)
        with pytest.raises(RuntimeError):
            builder.allocate_inputs(1)

    def test_unknown_input_block(self):
        with pytest.raises(KeyError):
            CircuitBuilder().input_block("missing")

    def test_constants(self):
        builder = CircuitBuilder()
        builder.allocate_inputs(1)
        true = builder.constant_true()
        false = builder.constant_false()
        assert builder.constant_true() == true  # cached
        circuit = builder.build()
        values = circuit.evaluate_slow([0])
        assert values[true] == 1
        assert values[false] == 0

    def test_copy_gate(self):
        builder = CircuitBuilder()
        builder.allocate_inputs(1)
        copy = builder.copy_gate(0)
        circuit = builder.build()
        assert circuit.evaluate_slow([1])[copy] == 1
        assert circuit.evaluate_slow([0])[copy] == 0

    def test_tag_counts(self):
        builder = CircuitBuilder()
        builder.allocate_inputs(2)
        builder.add_gate([0], [1], 1, tag="x")
        builder.add_gate([1], [1], 1, tag="x")
        builder.add_gate([0, 1], [1, 1], 2, tag="y")
        assert builder.tag_counts() == {"x": 2, "y": 1}

    def test_gate_sharing(self):
        shared = CircuitBuilder(share_gates=True)
        shared.allocate_inputs(2)
        first = shared.add_gate([0, 1], [1, 1], 2)
        second = shared.add_gate([0, 1], [1, 1], 2)
        assert first == second
        assert shared.size == 1

        unshared = CircuitBuilder(share_gates=False)
        unshared.allocate_inputs(2)
        assert unshared.add_gate([0, 1], [1, 1], 2) != unshared.add_gate([0, 1], [1, 1], 2)
        assert unshared.size == 2


class TestCountingBuilder:
    def test_counts_match_real_builder(self):
        def construct(builder):
            inputs = builder.allocate_inputs(4, "in")
            layer = [builder.add_gate(inputs, [1] * 4, k, tag="layer1") for k in range(1, 4)]
            builder.add_gate(layer, [1, -1, 1], 1, tag="out")
            builder.set_outputs([builder.add_gate(layer, [1, 1, 1], 2)])

        real = CircuitBuilder()
        construct(real)
        counting = CountingBuilder()
        construct(counting)

        circuit = real.build()
        assert counting.size == circuit.size
        assert counting.depth == circuit.depth
        assert counting.edges == circuit.edges
        assert counting.max_fan_in == circuit.max_fan_in
        assert counting.n_inputs == circuit.n_inputs
        assert counting.tag_counts() == real.tag_counts()

    def test_counting_builder_constants_and_copy(self):
        builder = CountingBuilder()
        builder.allocate_inputs(1)
        t = builder.constant_true()
        assert builder.constant_true() == t
        builder.copy_gate(0)
        assert builder.size == 2

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            CountingBuilder().allocate_inputs(-1)
