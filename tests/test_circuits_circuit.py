"""Tests for repro.circuits.circuit — the circuit container and its measures."""

import numpy as np
import pytest

from repro.circuits.circuit import ThresholdCircuit
from repro.circuits.gate import Gate


def small_circuit():
    """x0 AND x1, then OR with x2 (as threshold gates)."""
    circuit = ThresholdCircuit(3)
    g_and = circuit.add_threshold_gate([0, 1], [1, 1], 2, tag="and")
    g_or = circuit.add_threshold_gate([g_and, 2], [1, 1], 1, tag="or")
    circuit.set_outputs([g_or], ["out"])
    return circuit, g_and, g_or


class TestConstruction:
    def test_node_ids_follow_inputs(self):
        circuit, g_and, g_or = small_circuit()
        assert g_and == 3 and g_or == 4
        assert circuit.n_nodes == 5
        assert circuit.size == 2

    def test_forward_references_rejected(self):
        circuit = ThresholdCircuit(1)
        with pytest.raises(ValueError):
            circuit.add_gate(Gate([5], [1], 1))

    def test_depth_tracking(self):
        circuit, g_and, g_or = small_circuit()
        assert circuit.node_depth(0) == 0
        assert circuit.node_depth(g_and) == 1
        assert circuit.node_depth(g_or) == 2
        assert circuit.depth == 2

    def test_outputs_must_exist(self):
        circuit = ThresholdCircuit(2)
        with pytest.raises(ValueError):
            circuit.set_outputs([7])

    def test_output_labels_must_align(self):
        circuit, *_ = small_circuit()
        with pytest.raises(ValueError):
            circuit.set_outputs([3], ["a", "b"])


class TestMeasures:
    def test_stats_fields(self):
        circuit, *_ = small_circuit()
        stats = circuit.stats()
        assert stats.size == 2
        assert stats.depth == 2
        assert stats.edges == 4
        assert stats.max_fan_in == 2
        assert stats.n_outputs == 1
        assert stats.as_dict()["size"] == 2

    def test_gates_by_depth(self):
        circuit, g_and, g_or = small_circuit()
        layers = circuit.gates_by_depth()
        assert layers == {1: [g_and], 2: [g_or]}

    def test_empty_circuit_measures(self):
        circuit = ThresholdCircuit(4)
        assert circuit.depth == 0
        assert circuit.size == 0
        assert circuit.edges == 0
        assert circuit.max_fan_in == 0


class TestReferenceEvaluation:
    def test_truth_table(self):
        circuit, *_ = small_circuit()
        # output = (x0 AND x1) OR x2
        for x0 in (0, 1):
            for x1 in (0, 1):
                for x2 in (0, 1):
                    values = circuit.evaluate_slow([x0, x1, x2])
                    expected = 1 if (x0 and x1) or x2 else 0
                    assert circuit.output_values(values)[0] == expected

    def test_rejects_wrong_arity(self):
        circuit, *_ = small_circuit()
        with pytest.raises(ValueError):
            circuit.evaluate_slow([0, 1])

    def test_rejects_non_binary_inputs(self):
        circuit, *_ = small_circuit()
        with pytest.raises(ValueError):
            circuit.evaluate_slow([0, 2, 0])

    def test_output_values_requires_outputs(self):
        circuit = ThresholdCircuit(1)
        with pytest.raises(ValueError):
            circuit.output_values(np.array([1]))
