"""Tests for repro.circuits.gate."""

import pytest

from repro.circuits.gate import Gate


class TestGateBasics:
    def test_fires_when_threshold_met(self):
        gate = Gate([0, 1], [1, 1], 2)
        assert gate.evaluate([1, 1]) == 1
        assert gate.evaluate([1, 0]) == 0

    def test_negative_weights(self):
        gate = Gate([0, 1], [1, -1], 1)
        assert gate.evaluate([1, 0]) == 1
        assert gate.evaluate([1, 1]) == 0
        assert gate.evaluate([0, 0]) == 0

    def test_zero_threshold_fires_on_empty_sum(self):
        gate = Gate([], [], 0)
        assert gate.evaluate([]) == 1

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            Gate([0, 1], [1], 1)

    def test_fan_in_and_weight_stats(self):
        gate = Gate([3, 5, 9], [2, -7, 1], 4)
        assert gate.fan_in == 3
        assert gate.max_abs_weight == 7

    def test_duplicate_sources_are_merged(self):
        gate = Gate([0, 0, 1], [1, 2, 5], 3)
        assert gate.fan_in == 2
        assert dict(zip(gate.sources, gate.weights)) == {0: 3, 1: 5}
        # Semantics preserved: 3*x0 + 5*x1 >= 3.
        assert gate.evaluate([1, 0]) == 1
        assert gate.evaluate([0, 0]) == 0


class TestGateEquality:
    def test_structural_equality_and_hash(self):
        a = Gate([0, 1], [1, 1], 2, tag="x")
        b = Gate([0, 1], [1, 1], 2, tag="y")  # tag does not affect identity
        c = Gate([0, 1], [1, 1], 3)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a.structural_key() == b.structural_key()

    def test_repr_contains_threshold(self):
        assert ">= 2" in repr(Gate([0], [1], 2))
