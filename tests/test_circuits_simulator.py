"""Tests for the vectorized simulator, including agreement with the slow path."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.builder import CircuitBuilder
from repro.circuits.circuit import ThresholdCircuit
from repro.circuits.simulator import CompiledCircuit, simulate


def parity_circuit(n_bits: int) -> ThresholdCircuit:
    """Depth-2 parity circuit (a classic TC0 construction)."""
    builder = CircuitBuilder(name="parity")
    inputs = builder.allocate_inputs(n_bits)
    at_least = [builder.add_gate(inputs, [1] * n_bits, k) for k in range(1, n_bits + 1)]
    weights = [1 if k % 2 == 1 else -1 for k in range(1, n_bits + 1)]
    out = builder.add_gate(at_least, weights, 1)
    builder.set_outputs([out], ["parity"])
    return builder.build()


class TestFastPath:
    def test_parity_exhaustive(self):
        circuit = parity_circuit(4)
        compiled = CompiledCircuit(circuit)
        assert compiled.uses_fast_path
        for value in range(16):
            bits = np.array([(value >> i) & 1 for i in range(4)])
            result = compiled.evaluate(bits)
            assert result.outputs[0] == bin(value).count("1") % 2

    def test_batch_evaluation_matches_single(self, rng):
        circuit = parity_circuit(6)
        compiled = CompiledCircuit(circuit)
        batch = rng.integers(0, 2, size=(6, 32))
        batched = compiled.evaluate(batch)
        for column in range(32):
            single = compiled.evaluate(batch[:, column])
            assert (batched.node_values[:, column] == single.node_values).all()
            assert batched.energy[column] == single.energy

    def test_agrees_with_slow_reference(self, rng):
        circuit = parity_circuit(5)
        compiled = CompiledCircuit(circuit)
        for _ in range(20):
            bits = rng.integers(0, 2, size=5)
            fast = compiled.evaluate(bits).node_values
            slow = circuit.evaluate_slow(list(bits))
            assert (fast == slow).all()

    def test_energy_counts_firing_gates(self):
        builder = CircuitBuilder()
        inputs = builder.allocate_inputs(2)
        builder.add_gate(inputs, [1, 1], 1)   # fires iff any input
        builder.add_gate(inputs, [1, 1], 2)   # fires iff both
        builder.set_outputs([2, 3])
        circuit = builder.build()
        result = simulate(circuit, np.array([1, 0]))
        assert result.energy == 1
        result = simulate(circuit, np.array([1, 1]))
        assert result.energy == 2

    def test_input_validation(self):
        circuit = parity_circuit(3)
        compiled = CompiledCircuit(circuit)
        with pytest.raises(ValueError):
            compiled.evaluate(np.array([0, 1]))
        with pytest.raises(ValueError):
            compiled.evaluate(np.array([0, 1, 2]))


class TestExactFallback:
    def test_huge_weights_use_exact_path(self):
        builder = CircuitBuilder()
        inputs = builder.allocate_inputs(2)
        huge = 1 << 70  # far beyond int64
        gate = builder.add_gate(inputs, [huge, -huge], huge)
        builder.set_outputs([gate])
        circuit = builder.build()
        compiled = CompiledCircuit(circuit)
        assert not compiled.uses_fast_path
        assert compiled.evaluate(np.array([1, 0])).outputs[0] == 1
        assert compiled.evaluate(np.array([1, 1])).outputs[0] == 0
        assert compiled.evaluate(np.array([0, 1])).outputs[0] == 0

    def test_fallback_batch(self):
        builder = CircuitBuilder()
        inputs = builder.allocate_inputs(1)
        gate = builder.add_gate(inputs, [1 << 70], 1)
        builder.set_outputs([gate])
        circuit = builder.build()
        compiled = CompiledCircuit(circuit)
        batch = np.array([[0, 1]])
        outputs = compiled.evaluate(batch).outputs
        assert outputs.tolist() == [[0, 1]]


class TestRandomCircuitsAgainstSlowPath:
    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_random_circuit_agreement(self, data):
        n_inputs = data.draw(st.integers(min_value=1, max_value=5))
        n_gates = data.draw(st.integers(min_value=1, max_value=12))
        builder = CircuitBuilder()
        builder.allocate_inputs(n_inputs)
        for g in range(n_gates):
            available = n_inputs + g
            fan_in = data.draw(st.integers(min_value=0, max_value=min(4, available)))
            sources = data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=available - 1),
                    min_size=fan_in,
                    max_size=fan_in,
                    unique=True,
                )
            )
            weights = data.draw(
                st.lists(
                    st.integers(min_value=-5, max_value=5),
                    min_size=fan_in,
                    max_size=fan_in,
                )
            )
            threshold = data.draw(st.integers(min_value=-10, max_value=10))
            builder.add_gate(sources, weights, threshold)
        circuit = builder.build()
        inputs = np.array(
            data.draw(
                st.lists(st.integers(0, 1), min_size=n_inputs, max_size=n_inputs)
            )
        )
        fast = CompiledCircuit(circuit).evaluate(inputs).node_values
        slow = circuit.evaluate_slow(list(inputs))
        assert (fast == slow).all()
