"""Unit tests for the columnar gate store, bulk add_gates and templates."""

import numpy as np
import pytest

from repro.circuits.builder import CircuitBuilder
from repro.circuits.circuit import ThresholdCircuit
from repro.circuits.gate import Gate
from repro.circuits.serialize import (
    circuit_from_dict,
    circuit_to_dict,
    structural_digest,
)
from repro.circuits.simulator import CompiledCircuit, build_layer_plan
from repro.circuits.store import IntVector, segment_max, segment_sum


class TestIntVector:
    def test_append_extend_roundtrip(self):
        vec = IntVector(capacity=2)
        for i in range(10):
            vec.append(i)
        vec.extend(np.arange(10, 20))
        assert len(vec) == 20
        assert vec.view().tolist() == list(range(20))
        assert vec[7] == 7
        assert vec.max() == 19

    def test_empty_max_default(self):
        assert IntVector().max(default=-1) == -1


class TestSegmentHelpers:
    def test_segment_max_with_empty_segments(self):
        values = np.asarray([5, 1, 9, 2], dtype=np.int64)
        offsets = np.asarray([0, 2, 2, 3, 4], dtype=np.int64)
        assert segment_max(values, offsets).tolist() == [5, 0, 9, 2]

    def test_segment_sum_with_empty_segments(self):
        values = np.asarray([5, 1, 9, 2], dtype=np.int64)
        offsets = np.asarray([0, 2, 2, 3, 4], dtype=np.int64)
        assert segment_sum(values, offsets).tolist() == [6, 0, 9, 2]


def _bulk(circuit, rows, **kwargs):
    """Helper: add gates given as (sources, weights, threshold) rows."""
    sources = [s for row in rows for s in row[0]]
    weights = [w for row in rows for w in row[1]]
    offsets = [0]
    for row in rows:
        offsets.append(offsets[-1] + len(row[0]))
    return circuit.add_gates(
        np.asarray(sources, dtype=np.int64),
        np.asarray(offsets, dtype=np.int64),
        weights,
        [row[2] for row in rows],
        **kwargs,
    )


class TestBulkAddGates:
    def test_matches_per_gate_path(self):
        rows = [([0, 1], [1, -2], 1), ([0], [3], 2), ([], [], 0)]
        a = ThresholdCircuit(2)
        for sources, weights, threshold in rows:
            a.add_gate(Gate(sources, weights, threshold))
        b = ThresholdCircuit(2)
        _bulk(b, rows)
        assert structural_digest(a) == structural_digest(b)
        assert a.stats() == b.stats()

    def test_intra_batch_references_and_depths(self):
        circuit = ThresholdCircuit(2)
        # Gate 2 reads inputs; gate 3 reads gate 2; gate 4 reads gates 2+3.
        _bulk(circuit, [([0, 1], [1, 1], 1), ([2], [1], 1), ([2, 3], [1, 1], 2)])
        assert circuit.gate_depths().tolist() == [1, 2, 3]
        reference = ThresholdCircuit(2)
        reference.add_gate(Gate([0, 1], [1, 1], 1))
        reference.add_gate(Gate([2], [1], 1))
        reference.add_gate(Gate([2, 3], [1, 1], 2))
        assert structural_digest(circuit) == structural_digest(reference)

    def test_forward_reference_rejected(self):
        circuit = ThresholdCircuit(1)
        with pytest.raises(ValueError):
            _bulk(circuit, [([2], [1], 1), ([0], [1], 1)])  # row 0 reads row 1

    def test_negative_source_rejected(self):
        circuit = ThresholdCircuit(1)
        with pytest.raises(ValueError):
            _bulk(circuit, [([-1], [1], 1)])

    def test_ragged_arrays_rejected(self):
        circuit = ThresholdCircuit(1)
        with pytest.raises(ValueError):
            circuit.add_gates(
                np.asarray([0], dtype=np.int64),
                np.asarray([0, 1], dtype=np.int64),
                [1, 2],  # one extra weight
                [1],
            )

    def test_duplicate_sources_canonicalized_like_gate(self):
        gate = Gate([3, 0, 3], [1, 2, 5], 4)
        circuit = ThresholdCircuit(4)
        _bulk(circuit, [([3, 0, 3], [1, 2, 5], 4)])
        assert circuit.gates[0].sources == gate.sources
        assert circuit.gates[0].weights == gate.weights
        per_gate = ThresholdCircuit(4)
        per_gate.add_gate(gate)
        assert structural_digest(circuit) == structural_digest(per_gate)

    def test_big_weights_fall_back_to_exact_storage(self):
        huge = 1 << 80
        circuit = ThresholdCircuit(2)
        _bulk(circuit, [([0, 1], [huge, -huge], huge)])
        assert circuit.gates[0].weights == (huge, -huge)
        assert circuit.stats().max_abs_weight == huge
        plan = build_layer_plan(circuit)
        assert not plan.int64_safe
        compiled = CompiledCircuit(circuit)
        assert not compiled.uses_fast_path
        values = compiled.evaluate(np.asarray([1, 0]))
        assert values.node_values.tolist() == [1, 0, 1]  # huge*1 >= huge fires
        values = compiled.evaluate(np.asarray([0, 1]))
        assert values.node_values.tolist() == [0, 1, 0]

    def test_duplicate_merge_overflowing_int64_degrades_exactly(self):
        # Merging duplicate sources can push an in-range weight past int64;
        # the store must flip to exact object columns, not wrap or crash.
        big = 1 << 62
        circuit = ThresholdCircuit(1)
        _bulk(circuit, [([0, 0], [big, big], 1)])
        assert circuit.gates[0].weights == (1 << 63,)
        assert circuit.stats().max_abs_weight == 1 << 63
        assert circuit.structural_hash()  # consolidation must not raise
        per_gate = ThresholdCircuit(1)
        per_gate.add_gate(Gate([0, 0], [big, big], 1))
        assert structural_digest(circuit) == structural_digest(per_gate)

    def test_stats_cached_and_invalidated(self):
        circuit = ThresholdCircuit(1)
        circuit.add_gate(Gate([0], [1], 1))
        first = circuit.stats()
        assert circuit.stats() is first  # cached object
        circuit.add_gate(Gate([0], [1], 1))
        second = circuit.stats()
        assert second is not first
        assert second.size == 2


class TestGateView:
    def test_view_indexing_and_iteration(self):
        circuit = ThresholdCircuit(2)
        ids = [circuit.add_gate(Gate([0], [1], 1, tag=f"t{i}")) for i in range(4)]
        view = circuit.gates
        assert len(view) == 4
        assert view[-1].tag == "t3"
        assert [g.tag for g in view] == ["t0", "t1", "t2", "t3"]
        assert [g.tag for g in view[1:3]] == ["t1", "t2"]
        assert circuit.gate_of(ids[2]).tag == "t2"
        with pytest.raises(IndexError):
            view[4]


class TestSharingAndTagCounts:
    def test_bulk_add_respects_sharing_cache(self):
        builder = CircuitBuilder(share_gates=True)
        inputs = builder.allocate_inputs(2)
        first = builder.add_gate(inputs, [1, 1], 2, tag="x")
        ids = builder.add_gates(
            np.asarray([0, 1, 0], dtype=np.int64),
            np.asarray([0, 2, 3], dtype=np.int64),
            [1, 1, 1],
            [2, 1],
            tag="x",
        )
        assert int(ids[0]) == first  # deduplicated against the earlier gate
        assert builder.size == 2

    def test_bulk_tag_counts_match_per_gate(self):
        bulk = CircuitBuilder()
        bulk.allocate_inputs(2)
        bulk.add_gates(
            np.asarray([0, 1], dtype=np.int64),
            np.asarray([0, 1, 2], dtype=np.int64),
            [1, 1],
            [1, 1],
            tag=["a", "b"],
        )
        assert bulk.tag_counts() == {"a": 1, "b": 1}


class TestTemplates:
    def test_stamped_copies_match_legacy(self):
        builder = CircuitBuilder()
        inputs = builder.allocate_inputs(4)

        def emit(recorder):
            g = recorder.add_gate([0, 1], [1, 1], 2, tag="tpl/and")
            return recorder.add_gate([g], [1], 1, tag="tpl/copy")

        stamper = builder.stamper
        results = stamper.stamp_all(
            key=("pair",),
            n_params=2,
            params_list=[[0, 1], [2, 3], [1, 2]],
            emit_template=emit,
            emit_legacy=lambda i: None,
        )
        circuit = builder.build()
        reference = CircuitBuilder(vectorize=False)
        reference.allocate_inputs(4)
        for a, b in ([0, 1], [2, 3], [1, 2]):
            g = reference.add_gate([a, b], [1, 1], 2, tag="tpl/and")
            reference.add_gate([g], [1], 1, tag="tpl/copy")
        assert circuit.structural_hash() == reference.build().structural_hash()
        assert builder.tag_counts() == reference.tag_counts()
        # Results are the mapped copy-local output nodes, in instance order.
        assert results == [5, 7, 9]

    def test_duplicate_params_use_legacy_emitter(self):
        builder = CircuitBuilder()
        builder.allocate_inputs(2)
        legacy_calls = []

        def emit(recorder):
            return recorder.add_gate([0, 1], [1, 1], 2, tag="t")

        def emit_legacy(i):
            legacy_calls.append(i)
            return builder.add_gate([0, 0], [1, 1], 2, tag="t")

        builder.stamper.stamp_all(
            key=("dup",),
            n_params=2,
            params_list=[[0, 1], [0, 0], [1, 0]],
            emit_template=emit,
            emit_legacy=emit_legacy,
        )
        assert legacy_calls == [1]
        # The duplicate-parameter copy merged its sources via Gate.
        assert builder.circuit.gates[1].sources == (0,)
        assert builder.circuit.gates[1].weights == (2,)


class TestSerializeBulk:
    def test_roundtrip_preserves_structure_and_tags(self):
        builder = CircuitBuilder()
        inputs = builder.allocate_inputs(3)
        g = builder.add_gate(inputs, [1, -2, 3], 1, tag="alpha")
        builder.add_gate([g, inputs[0]], [1, 1], 2, tag="beta")
        builder.set_outputs([g], ["out"])
        circuit = builder.build()
        clone = circuit_from_dict(circuit_to_dict(circuit))
        assert clone.structural_hash() == circuit.structural_hash()
        assert [gate.tag for gate in clone.gates] == ["alpha", "beta"]
        assert clone.output_labels == ["out"]

    def test_handwritten_payload_with_duplicates_loads_canonically(self):
        payload = {
            "format": "repro-threshold-circuit",
            "version": 1,
            "name": "dup",
            "n_inputs": 2,
            "gates": [[[1, 1, 0], [1, 1, 1], 2, ""]],
            "outputs": [],
            "output_labels": [],
            "metadata": {},
        }
        circuit = circuit_from_dict(payload)
        assert circuit.gates[0].sources == (0, 1)
        assert circuit.gates[0].weights == (1, 2)
