"""Tests for validation, optimization passes and JSON serialization."""

import io

import numpy as np
import pytest

from repro.circuits.builder import CircuitBuilder
from repro.circuits.circuit import ThresholdCircuit
from repro.circuits.gate import Gate
from repro.circuits.optimize import deduplicate_gates, eliminate_dead_gates
from repro.circuits.serialize import (
    circuit_from_dict,
    circuit_to_dict,
    dump_circuit,
    load_circuit,
)
from repro.circuits.simulator import CompiledCircuit
from repro.circuits.validate import validate_circuit


def build_redundant_circuit():
    builder = CircuitBuilder(name="redundant")
    inputs = builder.allocate_inputs(3)
    g1 = builder.add_gate(inputs[:2], [1, 1], 2, tag="and")
    g2 = builder.add_gate(inputs[:2], [1, 1], 2, tag="and")   # duplicate of g1
    g3 = builder.add_gate([g1, inputs[2]], [1, 1], 1, tag="or")
    g4 = builder.add_gate([g2, inputs[2]], [1, 1], 1, tag="or")  # dup after merging g1/g2
    dead = builder.add_gate(inputs, [1, 1, 1], 3, tag="dead")
    builder.set_outputs([g3, g4], ["a", "b"])
    return builder.build()


class TestValidate:
    def test_valid_circuit_passes(self):
        report = validate_circuit(build_redundant_circuit(), require_outputs=True)
        assert report.ok
        report.raise_if_invalid()  # should not raise

    def test_fan_in_budget(self):
        report = validate_circuit(build_redundant_circuit(), max_fan_in=3)
        assert report.ok
        report = validate_circuit(build_redundant_circuit(), max_fan_in=2)
        assert not report.ok
        assert len(report.issues) == 1  # only the fan-in-3 dead gate violates it

    def test_depth_budget(self):
        assert not validate_circuit(build_redundant_circuit(), max_depth=1).ok

    def test_missing_outputs_detected(self):
        circuit = ThresholdCircuit(1)
        circuit.add_gate(Gate([0], [1], 1))
        assert not validate_circuit(circuit, require_outputs=True).ok

    def test_raise_if_invalid(self):
        circuit = ThresholdCircuit(1)
        circuit.add_gate(Gate([0], [1], 1))
        report = validate_circuit(circuit, require_outputs=True)
        with pytest.raises(ValueError):
            report.raise_if_invalid()


class TestOptimize:
    def test_deduplication_merges_cascading_duplicates(self):
        circuit = build_redundant_circuit()
        optimized, node_map = deduplicate_gates(circuit)
        # g1/g2 merge, then g3/g4 merge; the dead gate stays.
        assert optimized.size == circuit.size - 2
        assert node_map[circuit.outputs[0]] == node_map[circuit.outputs[1]]

    def test_deduplication_preserves_semantics(self, rng):
        circuit = build_redundant_circuit()
        optimized, _ = deduplicate_gates(circuit)
        for _ in range(10):
            inputs = rng.integers(0, 2, size=3)
            original = CompiledCircuit(circuit).evaluate(inputs).outputs
            reduced = CompiledCircuit(optimized).evaluate(inputs).outputs
            assert (original == reduced).all()

    def test_dead_gate_elimination(self):
        circuit = build_redundant_circuit()
        pruned, _ = eliminate_dead_gates(circuit)
        assert pruned.size == circuit.size - 1  # only the dead gate goes
        report = validate_circuit(pruned, require_outputs=True)
        assert report.ok

    def test_dead_gate_elimination_requires_outputs(self):
        circuit = ThresholdCircuit(1)
        circuit.add_gate(Gate([0], [1], 1))
        with pytest.raises(ValueError):
            eliminate_dead_gates(circuit)


class TestSerialize:
    def test_roundtrip_preserves_structure_and_semantics(self, rng):
        circuit = build_redundant_circuit()
        circuit.metadata["note"] = "test"
        payload = circuit_to_dict(circuit)
        restored = circuit_from_dict(payload)
        assert restored.size == circuit.size
        assert restored.n_inputs == circuit.n_inputs
        assert restored.outputs == circuit.outputs
        assert restored.metadata == circuit.metadata
        for _ in range(5):
            inputs = rng.integers(0, 2, size=3)
            assert (
                CompiledCircuit(circuit).evaluate(inputs).outputs
                == CompiledCircuit(restored).evaluate(inputs).outputs
            ).all()

    def test_file_roundtrip(self, tmp_path):
        circuit = build_redundant_circuit()
        path = str(tmp_path / "circuit.json")
        dump_circuit(circuit, path)
        restored = load_circuit(path)
        assert restored.size == circuit.size

    def test_stream_roundtrip(self):
        circuit = build_redundant_circuit()
        stream = io.StringIO()
        dump_circuit(circuit, stream)
        stream.seek(0)
        assert load_circuit(stream).size == circuit.size

    def test_rejects_foreign_payload(self):
        with pytest.raises(ValueError):
            circuit_from_dict({"format": "something-else"})

    def test_rejects_unknown_version(self):
        with pytest.raises(ValueError):
            circuit_from_dict({"format": "repro-threshold-circuit", "version": 99})

    def test_failed_dump_leaves_previous_file_and_no_litter(self, tmp_path):
        import os

        path = str(tmp_path / "circuit.json")
        good = build_redundant_circuit()
        dump_circuit(good, path)
        before = open(path).read()

        bad = build_redundant_circuit()
        bad.metadata["poison"] = object()  # json.dump chokes mid-write
        with pytest.raises(TypeError):
            dump_circuit(bad, path)
        # The interrupted dump neither clobbered the published file nor
        # left its staging temp file behind.
        assert open(path).read() == before
        assert os.listdir(tmp_path) == ["circuit.json"]
        assert load_circuit(path).size == good.size

    def test_trusted_load_skips_static_verification(self, monkeypatch):
        import repro.statics

        payload = circuit_to_dict(build_redundant_circuit())

        def boom(*args, **kwargs):
            raise AssertionError("verifier must not run on the trusted path")

        monkeypatch.setattr(repro.statics, "verify_circuit", boom)
        with pytest.raises(AssertionError):
            circuit_from_dict(payload)  # default path verifies (and explodes)
        trusted = circuit_from_dict(payload, trusted=True)
        assert trusted.size == build_redundant_circuit().size
        assert circuit_from_dict(payload, validate=False).size == trusted.size
