"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    stream = io.StringIO()
    code = main(argv, stream=stream)
    return code, json.loads(stream.getvalue())


class TestBasicCommands:
    def test_algorithms(self):
        code, payload = run_cli(["algorithms"])
        assert code == 0
        assert "strassen" in payload["algorithms"]

    def test_info(self):
        code, payload = run_cli(["info", "strassen"])
        assert code == 0
        assert payload["sparsity"]["s"] == 12
        assert any("M1 =" in line for line in payload["description"])

    def test_info_unknown_algorithm(self):
        with pytest.raises(KeyError):
            run_cli(["info", "unknown"])

    def test_predict(self):
        code, payload = run_cli(["predict", "--d", "4"])
        assert code == 0
        assert payload["exponent"] < 3.0
        code, payload = run_cli(["predict"])
        assert payload["exponent"] == pytest.approx(payload["omega"])

    def test_count_trace(self):
        code, payload = run_cli(["count", "--kind", "trace", "--n", "4", "--d", "2", "--bit-width", "1"])
        assert code == 0
        assert payload["size"] > 0
        assert payload["depth"] <= 2 * 2 + 5

    def test_count_matmul(self):
        code, payload = run_cli(["count", "--kind", "matmul", "--n", "4", "--d", "2", "--bit-width", "1"])
        assert code == 0
        assert payload["depth"] <= 4 * 2 + 1


class TestBuildCommands:
    def test_build_trace_with_export(self, tmp_path):
        out = str(tmp_path / "trace.json")
        code, payload = run_cli(
            ["build-trace", "--n", "2", "--tau", "3", "--d", "1", "--bit-width", "1", "--output", out]
        )
        assert code == 0
        assert payload["written_to"] == out
        from repro.circuits.serialize import load_circuit

        restored = load_circuit(out)
        assert restored.size == payload["size"]

    def test_build_matmul(self):
        code, payload = run_cli(["build-matmul", "--n", "2", "--d", "1", "--bit-width", "1"])
        assert code == 0
        assert payload["kind"] == "matmul"
        assert payload["size"] > 0


class TestTrianglesCommand:
    def make_edge_file(self, tmp_path, edges, extra_lines=()):
        path = tmp_path / "graph.txt"
        lines = [f"{u} {v}" for u, v in edges] + list(extra_lines)
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_triangle_query_from_edge_list(self, tmp_path):
        # A 4-clique on vertices 0-3 has 4 triangles.
        edges = [(i, j) for i in range(4) for j in range(i + 1, 4)]
        path = self.make_edge_file(tmp_path, edges, extra_lines=["# comment", ""])
        code, payload = run_cli(["triangles", "--edges", path, "--tau", "4", "--d", "1", "--naive"])
        assert code == 0
        assert payload["exact_triangles"] == 4
        assert payload["circuit_answer"] is True
        assert payload["naive_answer"] is True

        code, payload = run_cli(["triangles", "--edges", path, "--tau", "5", "--d", "1"])
        assert payload["circuit_answer"] is False

    def test_malformed_edge_file(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2 3\n")
        with pytest.raises(ValueError):
            run_cli(["triangles", "--edges", str(path), "--tau", "1"])

    def test_empty_edge_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(ValueError):
            run_cli(["triangles", "--edges", str(path), "--tau", "1"])


class TestSimulateCommand:
    def export_circuit(self, tmp_path):
        path = str(tmp_path / "trace.json")
        code, payload = run_cli(
            ["build-trace", "--n", "2", "--tau", "3", "--d", "1", "--bit-width", "1", "--output", path]
        )
        assert code == 0
        return path, payload["n_inputs"]

    def write_rows(self, tmp_path, rows):
        path = tmp_path / "rows.txt"
        path.write_text("\n".join(rows) + "\n")
        return str(path)

    def test_simulate_outputs_and_energy(self, tmp_path):
        circuit_path, n_inputs = self.export_circuit(tmp_path)
        rows = self.write_rows(
            tmp_path, ["# comment", "0" * n_inputs, "1" * n_inputs, " ".join(["1", "0"] * (n_inputs // 2))]
        )
        code, payload = run_cli(["simulate", "--circuit", circuit_path, "--inputs", rows])
        assert code == 0
        assert payload["batch"] == 3
        assert len(payload["outputs"]) == 3
        assert len(payload["energy"]) == 3
        assert payload["energy"][0] == 0  # all-zero input fires nothing
        assert payload["backend"] in ("sparse", "dense", "exact")
        # compile() then evaluate() must share one cached program
        assert payload["cache"]["hits"] >= 1

    def test_simulate_backends_agree(self, tmp_path):
        circuit_path, n_inputs = self.export_circuit(tmp_path)
        rows = self.write_rows(tmp_path, ["01" * (n_inputs // 2), "10" * (n_inputs // 2)])
        payloads = {}
        for backend in ("sparse", "dense", "exact"):
            code, payload = run_cli(
                ["simulate", "--circuit", circuit_path, "--inputs", rows, "--backend", backend]
            )
            assert code == 0
            assert payload["backend"] == backend
            payloads[backend] = (payload["outputs"], payload["energy"])
        assert payloads["sparse"] == payloads["dense"] == payloads["exact"]

    def test_simulate_chunked_workers(self, tmp_path):
        circuit_path, n_inputs = self.export_circuit(tmp_path)
        rows = self.write_rows(tmp_path, ["0" * n_inputs, "1" * n_inputs, "01" * (n_inputs // 2), "10" * (n_inputs // 2)])
        serial_code, serial = run_cli(["simulate", "--circuit", circuit_path, "--inputs", rows])
        assert serial_code == 0
        sharded_code, sharded = run_cli(
            ["simulate", "--circuit", circuit_path, "--inputs", rows, "--chunk-size", "2", "--workers", "2"]
        )
        assert sharded_code == 0
        assert sharded["outputs"] == serial["outputs"]
        assert sharded["energy"] == serial["energy"]

    def test_simulate_malformed_rows(self, tmp_path):
        circuit_path, n_inputs = self.export_circuit(tmp_path)
        rows = self.write_rows(tmp_path, ["01"])
        with pytest.raises(ValueError):
            run_cli(["simulate", "--circuit", circuit_path, "--inputs", rows])
        with pytest.raises(ValueError):
            run_cli(["simulate", "--circuit", circuit_path, "--inputs", self.write_rows(tmp_path, ["# none"])])


class TestEnergyTraceCommand:
    def test_energy_trace_random_samples(self, tmp_path):
        path = str(tmp_path / "trace.json")
        run_cli(["build-trace", "--n", "2", "--tau", "3", "--d", "1", "--bit-width", "1", "--output", path])
        code, payload = run_cli(["energy-trace", "--circuit", path, "--samples", "8", "--seed", "7"])
        assert code == 0
        assert payload["samples"] == 8
        assert payload["circuit_size"] > 0
        layer_gates = sum(row["gates"] for row in payload["layers"])
        assert layer_gates == payload["circuit_size"]
        # total energy is the sum of per-layer spikes
        mean_from_layers = sum(row["mean_spikes"] for row in payload["layers"])
        assert mean_from_layers == pytest.approx(payload["mean_energy"])
        assert 0.0 <= payload["mean_fraction_firing"] <= 1.0

    def test_energy_trace_explicit_inputs(self, tmp_path):
        path = str(tmp_path / "trace.json")
        code, built = run_cli(
            ["build-trace", "--n", "2", "--tau", "3", "--d", "1", "--bit-width", "1", "--output", path]
        )
        rows = tmp_path / "rows.txt"
        rows.write_text("0" * built["n_inputs"] + "\n")
        code, payload = run_cli(["energy-trace", "--circuit", path, "--inputs", str(rows)])
        assert code == 0
        assert payload["samples"] == 1
        assert payload["min_energy"] == 0


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestBatchEvalCommand:
    def export_circuit(self, tmp_path):
        path = str(tmp_path / "trace.json")
        code, payload = run_cli(
            ["build-trace", "--n", "2", "--tau", "3", "--d", "1", "--bit-width", "1", "--output", path]
        )
        assert code == 0
        return path, payload["n_inputs"]

    def write_rows(self, tmp_path, name, rows):
        path = tmp_path / name
        path.write_text("\n".join(rows) + "\n")
        return str(path)

    def test_batch_eval_matches_simulate(self, tmp_path):
        circuit_path, n_inputs = self.export_circuit(tmp_path)
        rows = ["0" * n_inputs, "1" * n_inputs, "01" * (n_inputs // 2), "10" * (n_inputs // 2)]
        rows_path = self.write_rows(tmp_path, "a.txt", rows)
        serial_code, serial = run_cli(["simulate", "--circuit", circuit_path, "--inputs", rows_path])
        assert serial_code == 0
        code, payload = run_cli(
            ["batch-eval", "--circuit", circuit_path, "--inputs", rows_path, "--workers", "2", "--repeat", "2"]
        )
        assert code == 0
        assert payload["jobs_submitted"] == 2
        assert payload["service"] is not None
        assert payload["service"]["jobs"] == 2
        (job,) = payload["jobs"]
        assert job["outputs"] == serial["outputs"]
        assert job["energy"] == serial["energy"]
        # One compile serves every repeat.
        assert payload["cache"]["misses"] == 1

    def test_batch_eval_many_files_pipelined(self, tmp_path):
        circuit_path, n_inputs = self.export_circuit(tmp_path)
        first = self.write_rows(tmp_path, "a.txt", ["0" * n_inputs, "1" * n_inputs])
        second = self.write_rows(tmp_path, "b.txt", ["01" * (n_inputs // 2), "10" * (n_inputs // 2), "1" * n_inputs])
        code, payload = run_cli(
            ["batch-eval", "--circuit", circuit_path, "--inputs", first, second]
        )
        assert code == 0
        assert [job["batch"] for job in payload["jobs"]] == [2, 3]
        for job, rows_path in zip(payload["jobs"], (first, second)):
            ref_code, reference = run_cli(["simulate", "--circuit", circuit_path, "--inputs", rows_path])
            assert ref_code == 0
            assert job["outputs"] == reference["outputs"]
            assert job["energy"] == reference["energy"]

    def test_batch_eval_rejects_bad_repeat(self, tmp_path):
        circuit_path, n_inputs = self.export_circuit(tmp_path)
        rows_path = self.write_rows(tmp_path, "a.txt", ["0" * n_inputs])
        with pytest.raises(ValueError):
            run_cli(
                ["batch-eval", "--circuit", circuit_path, "--inputs", rows_path, "--repeat", "0"]
            )

    def test_batch_eval_single_worker_runs_inline(self, tmp_path):
        circuit_path, n_inputs = self.export_circuit(tmp_path)
        rows_path = self.write_rows(tmp_path, "a.txt", ["0" * n_inputs, "1" * n_inputs])
        code, payload = run_cli(
            ["batch-eval", "--circuit", circuit_path, "--inputs", rows_path, "--workers", "1"]
        )
        assert code == 0
        assert payload["service"] is None  # no resident pool for one worker
        assert payload["workers"] == 1
        with pytest.raises(ValueError):
            run_cli(
                ["batch-eval", "--circuit", circuit_path, "--inputs", rows_path, "--workers", "0"]
            )


class TestVersion:
    def test_version_flag_exits_zero(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_package_version_matches_single_source(self):
        import repro
        from repro._version import __version__

        assert repro.__version__ == __version__


class TestMetricsFlags:
    def export_circuit(self, tmp_path):
        path = str(tmp_path / "trace.json")
        code, payload = run_cli(
            ["build-trace", "--n", "2", "--tau", "3", "--d", "1", "--bit-width", "1", "--output", path]
        )
        assert code == 0
        return path, payload["n_inputs"]

    def write_rows(self, tmp_path, rows):
        path = tmp_path / "rows.txt"
        path.write_text("\n".join(rows) + "\n")
        return str(path)

    def test_simulate_metrics_json_embeds_snapshot(self, tmp_path):
        circuit_path, n_inputs = self.export_circuit(tmp_path)
        rows_path = self.write_rows(tmp_path, ["0" * n_inputs, "1" * n_inputs])
        code, payload = run_cli(
            ["simulate", "--circuit", circuit_path, "--inputs", rows_path, "--metrics", "json"]
        )
        assert code == 0
        metrics = payload["metrics"]
        for key in ("version", "telemetry", "counters", "gauges", "histograms"):
            assert key in metrics
        assert metrics["telemetry"] is True
        # The default engine's compile cache is process-wide, so whether this
        # lands as a hit or a miss depends on test order — either way the
        # lookup is counted and the evaluation timed.
        assert any(key.startswith("cache.") for key in metrics["counters"])
        assert any(key.startswith("engine.eval_columns") for key in metrics["counters"])
        assert any(key.startswith("engine.evaluate_s") for key in metrics["histograms"])

    def test_simulate_metrics_text_appends_prometheus(self, tmp_path):
        circuit_path, n_inputs = self.export_circuit(tmp_path)
        rows_path = self.write_rows(tmp_path, ["0" * n_inputs])
        stream = io.StringIO()
        code = main(
            ["simulate", "--circuit", circuit_path, "--inputs", rows_path, "--metrics", "text"],
            stream=stream,
        )
        assert code == 0
        text = stream.getvalue()
        json_part, _, metrics_part = text.partition("# TYPE repro_build_info gauge")
        json.loads(json_part)  # the payload is still valid JSON on its own
        assert metrics_part
        assert "repro_engine_eval_columns_total" in metrics_part

    def test_metrics_session_does_not_leak(self, tmp_path):
        from repro.obs import get_registry

        circuit_path, n_inputs = self.export_circuit(tmp_path)
        rows_path = self.write_rows(tmp_path, ["0" * n_inputs])
        code, _ = run_cli(
            ["simulate", "--circuit", circuit_path, "--inputs", rows_path, "--metrics", "json"]
        )
        assert code == 0
        assert not get_registry().enabled

    def test_batch_eval_metrics_include_worker_series(self, tmp_path):
        circuit_path, n_inputs = self.export_circuit(tmp_path)
        rows = ["0" * n_inputs, "1" * n_inputs, "01" * (n_inputs // 2)]
        rows_path = self.write_rows(tmp_path, rows)
        code, payload = run_cli(
            [
                "batch-eval", "--circuit", circuit_path, "--inputs", rows_path,
                "--workers", "2", "--repeat", "3", "--metrics", "json",
            ]
        )
        assert code == 0
        counters = payload["metrics"]["counters"]
        assert any(key.startswith("worker.tasks{") for key in counters)
        assert any(key.startswith("service.jobs") for key in counters)
        worker_tasks = sum(
            value for key, value in counters.items() if key.startswith("worker.tasks{")
        )
        assert worker_tasks == payload["service"]["tasks"]


class TestStatsCommand:
    def export_circuit(self, tmp_path):
        path = str(tmp_path / "trace.json")
        code, payload = run_cli(
            ["build-trace", "--n", "2", "--tau", "3", "--d", "1", "--bit-width", "1", "--output", path]
        )
        assert code == 0
        return path

    def test_stats_bare_snapshot(self):
        code, payload = run_cli(["stats"])
        assert code == 0
        assert payload["telemetry"] is True
        assert payload["counters"] == {}

    def test_stats_exercises_circuit(self, tmp_path):
        circuit_path = self.export_circuit(tmp_path)
        code, payload = run_cli(
            ["stats", "--circuit", circuit_path, "--samples", "4"]
        )
        assert code == 0
        assert any(key.startswith("engine.eval_columns") for key in payload["counters"])

    def test_stats_text_format(self, tmp_path):
        circuit_path = self.export_circuit(tmp_path)
        stream = io.StringIO()
        code = main(
            ["stats", "--circuit", circuit_path, "--samples", "2", "--format", "text"],
            stream=stream,
        )
        assert code == 0
        text = stream.getvalue()
        assert text.startswith("# TYPE repro_build_info gauge")
        assert "repro_engine_eval_columns_total" in text

    def test_stats_rejects_bad_samples(self, tmp_path):
        circuit_path = self.export_circuit(tmp_path)
        with pytest.raises(ValueError):
            run_cli(["stats", "--circuit", circuit_path, "--samples", "0"])


class TestCacheCommands:
    def export_circuit(self, tmp_path):
        path = str(tmp_path / "trace.json")
        code, _ = run_cli(
            ["build-trace", "--n", "2", "--tau", "3", "--d", "1", "--bit-width", "1", "--output", path]
        )
        assert code == 0
        return path

    def test_warm_stats_prune_round_trip(self, tmp_path):
        circuit_path = self.export_circuit(tmp_path)
        adir = str(tmp_path / "artifacts")

        code, payload = run_cli(
            ["cache", "warm", "--circuit", circuit_path, "--backend", "sparse", "--artifact-dir", adir]
        )
        assert code == 0
        (warmed,) = payload["warmed"]
        assert warmed["backend"] == "sparse"
        assert warmed["stored"] is True

        # Warming the same circuit again finds the artifact already there.
        code, payload = run_cli(
            ["cache", "warm", "--circuit", circuit_path, "--backend", "sparse", "--artifact-dir", adir]
        )
        assert payload["warmed"][0]["stored"] is False

        code, payload = run_cli(["cache", "stats", "--artifact-dir", adir])
        assert code == 0
        assert payload["artifacts"] == 1
        (entry,) = payload["entries"]
        assert entry["backend"] == "sparse"
        assert entry["has_circuit"] is True

        code, payload = run_cli(
            ["cache", "prune", "--artifact-dir", adir, "--max-bytes", "0"]
        )
        assert code == 0
        assert payload["artifacts_removed"] == 1
        code, payload = run_cli(["cache", "stats", "--artifact-dir", adir])
        assert payload["artifacts"] == 0

    def test_warm_from_bundled_circuits_covers_other_backends(self, tmp_path):
        circuit_path = self.export_circuit(tmp_path)
        adir = str(tmp_path / "artifacts")
        run_cli(
            ["cache", "warm", "--circuit", circuit_path, "--backend", "sparse", "--artifact-dir", adir]
        )
        # No --circuit: re-warm from the circuit JSON bundled in existing
        # artifacts, compiling for a second backend.
        code, payload = run_cli(
            ["cache", "warm", "--backend", "dense", "--artifact-dir", adir]
        )
        assert code == 0
        (warmed,) = payload["warmed"]
        assert warmed["backend"] == "dense"
        assert warmed["stored"] is True
        code, payload = run_cli(["cache", "stats", "--artifact-dir", adir])
        assert payload["artifacts"] == 2
        assert {e["backend"] for e in payload["entries"]} == {"sparse", "dense"}

    def test_stats_text_format(self, tmp_path):
        circuit_path = self.export_circuit(tmp_path)
        adir = str(tmp_path / "artifacts")
        run_cli(
            ["cache", "warm", "--circuit", circuit_path, "--backend", "sparse", "--artifact-dir", adir]
        )
        stream = io.StringIO()
        code = main(
            ["cache", "stats", "--artifact-dir", adir, "--format", "text"],
            stream=stream,
        )
        assert code == 0
        text = stream.getvalue()
        assert text.startswith(f"artifact dir: {adir}")
        assert "artifacts: 1" in text
        assert "sparse" in text and "+circuit" in text
