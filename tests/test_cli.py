"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    stream = io.StringIO()
    code = main(argv, stream=stream)
    return code, json.loads(stream.getvalue())


class TestBasicCommands:
    def test_algorithms(self):
        code, payload = run_cli(["algorithms"])
        assert code == 0
        assert "strassen" in payload["algorithms"]

    def test_info(self):
        code, payload = run_cli(["info", "strassen"])
        assert code == 0
        assert payload["sparsity"]["s"] == 12
        assert any("M1 =" in line for line in payload["description"])

    def test_info_unknown_algorithm(self):
        with pytest.raises(KeyError):
            run_cli(["info", "unknown"])

    def test_predict(self):
        code, payload = run_cli(["predict", "--d", "4"])
        assert code == 0
        assert payload["exponent"] < 3.0
        code, payload = run_cli(["predict"])
        assert payload["exponent"] == pytest.approx(payload["omega"])

    def test_count_trace(self):
        code, payload = run_cli(["count", "--kind", "trace", "--n", "4", "--d", "2", "--bit-width", "1"])
        assert code == 0
        assert payload["size"] > 0
        assert payload["depth"] <= 2 * 2 + 5

    def test_count_matmul(self):
        code, payload = run_cli(["count", "--kind", "matmul", "--n", "4", "--d", "2", "--bit-width", "1"])
        assert code == 0
        assert payload["depth"] <= 4 * 2 + 1


class TestBuildCommands:
    def test_build_trace_with_export(self, tmp_path):
        out = str(tmp_path / "trace.json")
        code, payload = run_cli(
            ["build-trace", "--n", "2", "--tau", "3", "--d", "1", "--bit-width", "1", "--output", out]
        )
        assert code == 0
        assert payload["written_to"] == out
        from repro.circuits.serialize import load_circuit

        restored = load_circuit(out)
        assert restored.size == payload["size"]

    def test_build_matmul(self):
        code, payload = run_cli(["build-matmul", "--n", "2", "--d", "1", "--bit-width", "1"])
        assert code == 0
        assert payload["kind"] == "matmul"
        assert payload["size"] > 0


class TestTrianglesCommand:
    def make_edge_file(self, tmp_path, edges, extra_lines=()):
        path = tmp_path / "graph.txt"
        lines = [f"{u} {v}" for u, v in edges] + list(extra_lines)
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_triangle_query_from_edge_list(self, tmp_path):
        # A 4-clique on vertices 0-3 has 4 triangles.
        edges = [(i, j) for i in range(4) for j in range(i + 1, 4)]
        path = self.make_edge_file(tmp_path, edges, extra_lines=["# comment", ""])
        code, payload = run_cli(["triangles", "--edges", path, "--tau", "4", "--d", "1", "--naive"])
        assert code == 0
        assert payload["exact_triangles"] == 4
        assert payload["circuit_answer"] is True
        assert payload["naive_answer"] is True

        code, payload = run_cli(["triangles", "--edges", path, "--tau", "5", "--d", "1"])
        assert payload["circuit_answer"] is False

    def test_malformed_edge_file(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2 3\n")
        with pytest.raises(ValueError):
            run_cli(["triangles", "--edges", str(path), "--tau", "1"])

    def test_empty_edge_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(ValueError):
            run_cli(["triangles", "--edges", str(path), "--tau", "1"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])
