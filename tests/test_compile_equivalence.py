"""Differential harness: every compile path must be bit-identical.

The engine now has two ways to compile a circuit — the classic CSR layer
plan and the template-streaming path (one layer plan per stamped gadget
template, tiled across stamps) — and three backends to lower either into.
This module is the single place where all of them are pinned against each
other and against the gate-by-gate reference ``evaluate_slow``:

    {template-tiled, CSR} x {sparse, dense, exact}  (+ evaluate_slow)

on every construction family (matmul / trace / direct / naive) in every
builder mode (banked / stamped / legacy), plus a Hypothesis-driven random
gadget soup.  Any future change to construction, stamping or compilation
that breaks bit-equality fails here with the offending path named.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.builder import CircuitBuilder
from repro.circuits.simulator import build_template_plan
from repro.core.direct_circuit import build_direct_matmul_circuit
from repro.core.matmul_circuit import build_matmul_circuit
from repro.core.naive_circuits import (
    build_naive_matmul_circuit,
    build_naive_trace_circuit,
    build_naive_triangle_circuit,
)
from repro.core.trace_circuit import build_trace_circuit
from repro.engine import Engine
from repro.engine.config import EngineConfig

BACKENDS = ("sparse", "dense", "exact")


def _template_engine() -> Engine:
    # min_cover=0 forces the template path whenever any block exists, so the
    # harness exercises it even on sparsely-stamped constructions.
    return Engine(EngineConfig(template_compile=True, template_min_cover=0.0))


def _csr_engine() -> Engine:
    return Engine(EngineConfig(template_compile=False))


def _random_inputs(circuit, batch=4, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=(circuit.n_inputs, batch)).astype(np.int64)


def assert_compile_equivalent(circuit, inputs=None, require_templates=False):
    """All paths x backends produce the reference node values, bit for bit."""
    if inputs is None:
        inputs = _random_inputs(circuit)
    batch = inputs.shape[1]
    reference = np.stack(
        [circuit.evaluate_slow(list(inputs[:, b])) for b in range(batch)], axis=1
    )
    if require_templates:
        assert build_template_plan(circuit) is not None, (
            "expected template provenance on this circuit"
        )
    template_engine = _template_engine()
    csr_engine = _csr_engine()
    for backend in BACKENDS:
        for label, engine in (("template", template_engine), ("csr", csr_engine)):
            values = engine.evaluate(circuit, inputs, backend=backend).node_values
            assert values.shape == reference.shape
            mismatch = values != reference
            assert not mismatch.any(), (
                f"{label} x {backend}: {int(mismatch.sum())} node values differ "
                f"from evaluate_slow (first at index "
                f"{np.argwhere(mismatch)[0].tolist()})"
            )


CONSTRUCTIONS = [
    pytest.param(
        lambda: build_naive_matmul_circuit(3, bit_width=1, stages=2).circuit,
        True,
        id="naive-matmul-banked",
    ),
    pytest.param(
        lambda: build_naive_matmul_circuit(
            3, bit_width=1, stages=2, banked=False
        ).circuit,
        True,
        id="naive-matmul-stamped",
    ),
    pytest.param(
        lambda: build_naive_matmul_circuit(
            3, bit_width=1, stages=2, vectorize=False
        ).circuit,
        False,
        id="naive-matmul-legacy",
    ),
    pytest.param(
        lambda: build_naive_trace_circuit(3, tau=1, bit_width=1).circuit,
        True,
        id="naive-trace-banked",
    ),
    pytest.param(
        lambda: build_naive_trace_circuit(
            3, tau=1, bit_width=1, banked=False
        ).circuit,
        True,
        id="naive-trace-stamped",
    ),
    pytest.param(
        lambda: build_naive_triangle_circuit(5, tau=2).circuit,
        False,  # pure bulk emission, no stamped gadgets
        id="naive-triangles",
    ),
    pytest.param(
        lambda: build_matmul_circuit(2, bit_width=1).circuit,
        True,
        id="matmul-strassen-banked",
    ),
    pytest.param(
        lambda: build_matmul_circuit(2, bit_width=1, banked=False).circuit,
        True,
        id="matmul-strassen-stamped",
    ),
    pytest.param(
        lambda: build_matmul_circuit(2, bit_width=1, vectorize=False).circuit,
        False,
        id="matmul-strassen-legacy",
    ),
    pytest.param(
        lambda: build_trace_circuit(2, tau=0, bit_width=1).circuit,
        True,
        id="trace-strassen-banked",
    ),
    pytest.param(
        lambda: build_trace_circuit(2, tau=0, bit_width=1, banked=False).circuit,
        True,
        id="trace-strassen-stamped",
    ),
    pytest.param(
        lambda: build_direct_matmul_circuit(2, bit_width=1, stages=2).circuit,
        True,
        id="direct-matmul-banked",
    ),
]


class TestConstructionEquivalence:
    @pytest.mark.parametrize("build, require_templates", CONSTRUCTIONS)
    def test_all_paths_bit_identical(self, build, require_templates):
        circuit = build()
        assert_compile_equivalent(circuit, require_templates=require_templates)

    def test_template_and_csr_verdicts_agree(self):
        from repro.circuits.simulator import build_layer_plan

        circuit = build_naive_matmul_circuit(3, bit_width=1, stages=2).circuit
        template_plan = build_template_plan(circuit)
        layer_plan = build_layer_plan(circuit)
        assert template_plan is not None
        assert template_plan.int64_safe == layer_plan.int64_safe
        assert template_plan.max_magnitude == layer_plan.max_magnitude
        assert template_plan.float64_exact == layer_plan.float64_exact
        assert template_plan.n_nodes == layer_plan.n_nodes

    def test_compile_circuit_honors_config(self):
        from repro.engine.backends import compile_circuit

        circuit = build_naive_matmul_circuit(2, bit_width=1).circuit
        assert circuit.template_blocks
        templated = compile_circuit(circuit, "sparse")
        assert hasattr(templated, "segments")  # default config: template path
        classic = compile_circuit(
            circuit, "sparse", config=EngineConfig(template_compile=False)
        )
        assert hasattr(classic, "layers")  # ablation switch: CSR path
        inputs = _random_inputs(circuit, batch=3, seed=2)
        assert (templated.run(inputs) == classic.run(inputs)).all()

    def test_spike_trace_matches_across_paths(self):
        circuit = build_naive_matmul_circuit(2, bit_width=1).circuit
        inputs = _random_inputs(circuit, batch=3, seed=7)
        trace_t = _template_engine().spike_trace(circuit, inputs)
        trace_c = _csr_engine().spike_trace(circuit, inputs)
        assert (trace_t.depths == trace_c.depths).all()
        assert (trace_t.gates_per_layer == trace_c.gates_per_layer).all()
        assert (trace_t.spikes_per_layer == trace_c.spikes_per_layer).all()
        assert (
            trace_t.synaptic_events_per_layer == trace_c.synaptic_events_per_layer
        ).all()
        assert (trace_t.energy == trace_c.energy).all()


class TestOverflowTemplatePath:
    """Templates with >int64 weights must route to the exact backend."""

    BIG = 1 << 70

    def _circuit(self):
        builder = CircuitBuilder(name="huge")
        builder.allocate_inputs(4)

        def emit_template(recorder):
            inner = recorder.add_gate([0, 1], [self.BIG, -self.BIG], 0, tag="huge")
            return recorder.add_gate([inner, 2], [1, 1], 2, tag="and")

        def emit_legacy(i):
            raise AssertionError("distinct-parameter copies must stamp")

        params = [[0, 1, 2], [1, 2, 3], [2, 3, 0]]
        results = builder.stamper.stamp_all(
            "huge-key", 3, params, emit_template, emit_legacy
        )
        builder.set_outputs([int(node) for node in results])
        return builder.build()

    def test_overflowing_template_circuit_is_exact_and_correct(self):
        from repro.engine.backends import BackendError

        circuit = self._circuit()
        plan = build_template_plan(circuit)
        assert plan is not None and not plan.int64_safe
        inputs = _random_inputs(circuit, batch=8, seed=5)
        reference = np.stack(
            [circuit.evaluate_slow(list(inputs[:, b])) for b in range(8)], axis=1
        )
        engine = _template_engine()
        result = engine.evaluate(circuit, inputs)  # auto resolves to exact
        assert (result.node_values == reference).all()
        program = engine.compile(circuit)
        assert program.backend_name == "exact"
        assert hasattr(program, "segments")  # template-tiled, not gatewise
        for backend in ("sparse", "dense"):
            with pytest.raises(BackendError):
                engine.compile(circuit, backend=backend)


# --------------------------------------------------------------------------- #
# Random gadget soup: arbitrary interleavings of stamped sums/products and
# hand-emitted gates, so template blocks and residual runs alternate in ways
# the named constructions never produce.
# --------------------------------------------------------------------------- #


def _soup_circuit(data):
    from repro.arithmetic.signed import SignedBinaryNumber
    from repro.arithmetic.product import build_signed_products
    from repro.arithmetic.weighted_sum import build_signed_sums

    n_inputs = data.draw(st.integers(min_value=2, max_value=5), label="n_inputs")
    builder = CircuitBuilder(name="soup")
    wires = builder.allocate_inputs(n_inputs, "x")

    def draw_number(label):
        n_bits = data.draw(st.integers(min_value=1, max_value=2), label=f"{label}/bits")
        picks = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n_inputs - 1),
                min_size=2 * n_bits,
                max_size=2 * n_bits,
            ),
            label=f"{label}/wires",
        )
        return SignedBinaryNumber.from_input_bits(
            [wires[p] for p in picks[:n_bits]], [wires[p] for p in picks[n_bits:]]
        )

    numbers = [
        draw_number(f"value{i}")
        for i in range(data.draw(st.integers(min_value=2, max_value=3), label="n_values"))
    ]
    outputs = []
    for i in range(data.draw(st.integers(min_value=1, max_value=3), label="n_ops")):
        kind = data.draw(
            st.sampled_from(["sum", "product", "raw"]), label=f"op{i}/kind"
        )
        if kind == "raw":
            # A hand-emitted gate between stamps forces a residual segment.
            fan = data.draw(st.integers(min_value=0, max_value=2), label=f"op{i}/fan")
            sources = data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=builder.n_nodes - 1),
                    min_size=fan,
                    max_size=fan,
                ),
                label=f"op{i}/sources",
            )
            weights = data.draw(
                st.lists(
                    st.integers(min_value=-4, max_value=4),
                    min_size=fan,
                    max_size=fan,
                ),
                label=f"op{i}/weights",
            )
            threshold = data.draw(
                st.integers(min_value=-3, max_value=3), label=f"op{i}/thr"
            )
            outputs.append(builder.add_gate(sources, weights, threshold, tag="raw"))
            continue
        count = data.draw(st.integers(min_value=1, max_value=3), label=f"op{i}/count")
        if kind == "sum":
            groups = []
            for j in range(count):
                terms = [
                    (
                        numbers[
                            data.draw(
                                st.integers(min_value=0, max_value=len(numbers) - 1),
                                label=f"op{i}/{j}/{t}/value",
                            )
                        ].to_signed_value(),
                        data.draw(
                            st.integers(min_value=-3, max_value=3).filter(bool),
                            label=f"op{i}/{j}/{t}/weight",
                        ),
                    )
                    for t in range(
                        data.draw(
                            st.integers(min_value=1, max_value=2),
                            label=f"op{i}/{j}/terms",
                        )
                    )
                ]
                groups.append(terms)
            results = build_signed_sums(builder, groups, tag=f"soup/sum{i}")
            numbers.extend(results)
            outputs.extend(node for r in results for node in r.pos.bit_nodes)
        else:
            groups = [
                [
                    numbers[
                        data.draw(
                            st.integers(min_value=0, max_value=len(numbers) - 1),
                            label=f"op{i}/{j}/{f}/factor",
                        )
                    ]
                    for f in range(2)
                ]
                for j in range(count)
            ]
            results = build_signed_products(builder, groups, tag=f"soup/prod{i}")
            for value in results:
                outputs.extend(node for node, _ in value.pos.terms)
    circuit = builder.build()
    if outputs:
        circuit.set_outputs(sorted(set(outputs)))
    return circuit


class TestRandomGadgetSoup:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_soup_bit_identical_across_paths(self, data):
        circuit = _soup_circuit(data)
        if circuit.size == 0:
            return
        inputs = _random_inputs(circuit, batch=3, seed=11)
        assert_compile_equivalent(circuit, inputs)
