"""Tests for the convolution-as-GEMM application (experiment E10)."""

import numpy as np
import pytest

from repro.convolution import (
    CircuitConvolutionLayer,
    ConvolutionShape,
    build_convolution_layer,
    conv2d_reference,
    im2col,
    kernels_to_matrix,
)


class TestShapes:
    def test_gemm_dimensions_follow_warden(self):
        shape = ConvolutionShape(image_size=8, channels=3, kernel_size=2, stride=2, n_kernels=5)
        p, q, k = shape.gemm_shape
        assert p == 16            # (8/2)^2 patches
        assert q == 2 * 2 * 3     # q*q*channels
        assert k == 5

    def test_stride_one(self):
        shape = ConvolutionShape(image_size=5, channels=1, kernel_size=3, stride=1, n_kernels=1)
        assert shape.n_patches == 9

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            ConvolutionShape(image_size=2, channels=1, kernel_size=3, stride=1, n_kernels=1)
        with pytest.raises(ValueError):
            ConvolutionShape(image_size=4, channels=1, kernel_size=2, stride=0, n_kernels=1)
        with pytest.raises(ValueError):
            ConvolutionShape(image_size=4, channels=0, kernel_size=2, stride=1, n_kernels=1)


class TestIm2Col:
    def test_patch_matrix_shape(self, rng):
        shape = ConvolutionShape(image_size=6, channels=2, kernel_size=2, stride=2, n_kernels=3)
        image = rng.integers(0, 4, (6, 6, 2))
        patches = im2col(image, shape)
        assert patches.shape == (shape.n_patches, shape.patch_length)

    def test_accepts_2d_single_channel_image(self, rng):
        shape = ConvolutionShape(image_size=4, channels=1, kernel_size=2, stride=2, n_kernels=1)
        assert im2col(rng.integers(0, 4, (4, 4)), shape).shape == (4, 4)

    def test_wrong_image_shape_rejected(self, rng):
        shape = ConvolutionShape(image_size=4, channels=1, kernel_size=2, stride=2, n_kernels=1)
        with pytest.raises(ValueError):
            im2col(rng.integers(0, 4, (5, 5, 1)), shape)

    def test_kernel_matrix_shape(self, rng):
        shape = ConvolutionShape(image_size=4, channels=2, kernel_size=2, stride=2, n_kernels=3)
        kernels = rng.integers(-2, 3, (3, 2, 2, 2))
        assert kernels_to_matrix(kernels, shape).shape == (shape.patch_length, 3)

    def test_dot_products_match_direct_convolution(self, rng):
        shape = ConvolutionShape(image_size=4, channels=1, kernel_size=2, stride=2, n_kernels=2)
        image = rng.integers(0, 4, (4, 4, 1))
        kernels = rng.integers(-2, 3, (2, 2, 2, 1))
        scores = conv2d_reference(image, kernels, shape)
        # Check one patch/kernel score by hand.
        top_left_patch = image[:2, :2, 0].reshape(-1)
        assert scores[0, 0] == int(np.dot(top_left_patch, kernels[0, :, :, 0].reshape(-1)))


class TestCircuitLayer:
    def test_circuit_convolution_matches_reference(self, rng):
        shape = ConvolutionShape(image_size=4, channels=1, kernel_size=2, stride=2, n_kernels=2)
        layer = build_convolution_layer(shape, bit_width=2, depth_parameter=2)
        image = rng.integers(0, 4, (4, 4, 1))
        kernels = rng.integers(-3, 4, (2, 2, 2, 1))
        assert (layer.apply(image, kernels) == layer.reference(image, kernels)).all()

    def test_gemm_dimension_is_power_of_t(self):
        shape = ConvolutionShape(image_size=4, channels=1, kernel_size=2, stride=2, n_kernels=5)
        layer = build_convolution_layer(shape, bit_width=1, depth_parameter=2)
        # P = 4, Q = 4, K = 5 -> padded to 8 for Strassen (T = 2).
        assert layer.gemm_dimension == 8
        assert layer.matmul.n == 8

    def test_entries_exceeding_budget_rejected(self, rng):
        shape = ConvolutionShape(image_size=4, channels=1, kernel_size=2, stride=2, n_kernels=1)
        layer = build_convolution_layer(shape, bit_width=2, depth_parameter=1)
        image = np.full((4, 4, 1), 9)
        kernels = rng.integers(-1, 2, (1, 2, 2, 1))
        with pytest.raises(ValueError):
            layer.apply(image, kernels)
