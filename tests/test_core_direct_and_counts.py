"""Tests for the Theorem 4.1 direct circuits and the gate-count models (E5, E6, E7)."""

import numpy as np
import pytest

from repro.core.direct_circuit import build_direct_matmul_circuit, build_direct_trace_circuit
from repro.core.gate_count_model import (
    analytic_cost,
    count_matmul_circuit,
    count_trace_circuit,
    naive_exponent_fit,
    naive_triangle_gate_count,
    predicted_exponent,
)
from repro.core.matmul_circuit import build_matmul_circuit
from repro.core.schedule import constant_depth_schedule, direct_schedule, every_k_schedule
from repro.core.trace_circuit import build_trace_circuit
from repro.fastmm.strassen import strassen_2x2


class TestDirectCircuits:
    def test_direct_matmul_correct(self, rng):
        a = rng.integers(0, 2, (4, 4))
        b = rng.integers(0, 2, (4, 4))
        circuit = build_direct_matmul_circuit(4, bit_width=1, stages=2)
        assert (circuit.evaluate(a, b) == a.astype(object) @ b.astype(object)).all()

    def test_direct_trace_correct(self, rng):
        matrix = rng.integers(0, 2, (4, 4))
        trace = int(np.trace(np.linalg.matrix_power(matrix.astype(object), 3)))
        circuit = build_direct_trace_circuit(4, max(trace, 1), bit_width=1, stages=2)
        assert circuit.evaluate(matrix) == (trace >= max(trace, 1))

    def test_single_jump_schedule(self):
        circuit = build_direct_matmul_circuit(8, bit_width=1, stages=1)
        assert circuit.schedule.levels == (0, 3)

    def test_staging_trades_depth_for_gates(self):
        """Theorem 4.1: more stages -> deeper circuit but fewer gates (wide sums)."""
        flat = count_trace_circuit(8, bit_width=1, schedule=direct_schedule(strassen_2x2(), 8), stages=1)
        staged = count_trace_circuit(8, bit_width=1, schedule=direct_schedule(strassen_2x2(), 8), stages=2)
        assert staged.depth > flat.depth
        assert staged.size < flat.size


class TestCountModelMatchesConstruction:
    @pytest.mark.parametrize("kind", ["trace", "matmul"])
    def test_exact_agreement(self, kind):
        if kind == "trace":
            cost = count_trace_circuit(4, tau=3, bit_width=1, depth_parameter=2)
            built = build_trace_circuit(4, 3, bit_width=1, depth_parameter=2).circuit
        else:
            cost = count_matmul_circuit(4, bit_width=1, depth_parameter=2)
            built = build_matmul_circuit(4, bit_width=1, depth_parameter=2).circuit
        assert cost.size == built.size
        assert cost.depth == built.depth
        assert cost.edges == built.edges
        assert cost.max_fan_in == built.max_fan_in
        assert cost.n_inputs == built.n_inputs

    def test_tag_breakdown_is_complete(self):
        cost = count_trace_circuit(2, bit_width=1, depth_parameter=1)
        assert sum(cost.by_tag.values()) == cost.size

    def test_as_dict(self):
        cost = count_trace_circuit(2, bit_width=1, depth_parameter=1)
        assert cost.as_dict()["size"] == cost.size


class TestSchedulesChangeCost:
    def test_lemma_4_3_schedule_beats_every_k_at_equal_depth(self):
        """The paper's remark: the geometric schedule beats uniform level selection.

        At N=8 the comparison is between the d=3 geometric schedule [0, 2, 3]
        and the single uniform jump [0, 3] allowed by the same depth budget of
        Theorem 4.1-style constructions; the margin is small at this size but
        already in the predicted direction.
        """
        strassen = strassen_2x2()
        n = 8
        geometric = count_trace_circuit(
            n, bit_width=1, schedule=constant_depth_schedule(strassen, n, 3)
        )
        uniform = count_trace_circuit(n, bit_width=1, schedule=every_k_schedule(strassen, n, 3))
        assert geometric.size < uniform.size

    def test_deeper_schedules_never_increase_gates(self):
        n = 8
        sizes = [count_trace_circuit(n, bit_width=1, depth_parameter=d).size for d in (1, 2, 3)]
        assert all(later <= earlier for earlier, later in zip(sizes, sizes[1:]))
        assert sizes[-1] < sizes[0]


class TestAnalyticModel:
    def test_predicted_exponent_matches_paper_table(self):
        strassen = strassen_2x2()
        assert abs(predicted_exponent(strassen, None) - strassen.omega) < 1e-12
        # omega + c * gamma^d for d = 1..4 (c ~ 1.585, gamma ~ 0.491).
        assert predicted_exponent(strassen, 1) == pytest.approx(2.807 + 1.585 * 0.4906, abs=5e-3)
        assert predicted_exponent(strassen, 4) < 3.0
        assert predicted_exponent(strassen, 10) == pytest.approx(strassen.omega, abs=5e-2)

    def test_exponent_decreases_with_depth(self):
        exponents = [predicted_exponent(None, d) for d in range(1, 8)]
        assert all(a > b for a, b in zip(exponents, exponents[1:]))

    def test_analytic_cost_structure(self):
        cost = analytic_cost(64, bit_width=1, depth_parameter=3, kind="trace")
        assert cost["total"] == (
            cost["leaves_A"] + cost["leaves_B"] + cost["leaves_pairing"] + cost["products"] + cost["output"]
        )
        matmul = analytic_cost(64, bit_width=1, depth_parameter=3, kind="matmul")
        assert "recombination" in matmul

    def test_analytic_cost_handles_huge_n(self):
        # Exact integer arithmetic: no overflow even at N = 2^200.
        cost = analytic_cost(2 ** 200, bit_width=1, depth_parameter=4, kind="trace")
        assert cost["total"] > 0
        assert isinstance(cost["total"], int)

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            analytic_cost(8, kind="nonsense")

    def test_naive_triangle_count(self):
        assert naive_triangle_gate_count(10) == 121

    def test_exponent_fit(self):
        counts = {n: n ** 3 for n in (8, 16, 32, 64)}
        assert naive_exponent_fit(counts) == pytest.approx(3.0, abs=1e-9)
        with pytest.raises(ValueError):
            naive_exponent_fit({8: 512})
