"""Tests for the Theorem 4.8 / 4.9 matrix-product circuits (experiment E8)."""

import numpy as np
import pytest

from repro.core.matmul_circuit import build_matmul_circuit
from repro.core.schedule import loglog_schedule
from repro.fastmm.naive_algorithm import naive_algorithm
from repro.fastmm.winograd import winograd_2x2


def exact(a, b):
    return np.asarray(a).astype(object) @ np.asarray(b).astype(object)


class TestCorrectness:
    @pytest.mark.parametrize("n,bit_width", [(2, 1), (2, 3), (4, 1)])
    def test_product_matches_exact(self, rng, n, bit_width):
        high = (1 << bit_width) - 1
        a = rng.integers(-high, high + 1, (n, n))
        b = rng.integers(-high, high + 1, (n, n))
        circuit = build_matmul_circuit(n, bit_width=bit_width, depth_parameter=2)
        assert (circuit.evaluate(a, b) == exact(a, b)).all()

    def test_loglog_schedule(self, rng, strassen):
        n = 4
        a = rng.integers(0, 2, (n, n))
        b = rng.integers(0, 2, (n, n))
        circuit = build_matmul_circuit(n, bit_width=1, schedule=loglog_schedule(strassen, n))
        assert (circuit.evaluate(a, b) == exact(a, b)).all()

    @pytest.mark.parametrize("factory", [winograd_2x2, lambda: naive_algorithm(2)])
    def test_other_algorithms(self, rng, factory):
        algorithm = factory()
        n = algorithm.t
        a = rng.integers(-3, 4, (n, n))
        b = rng.integers(-3, 4, (n, n))
        circuit = build_matmul_circuit(n, bit_width=2, algorithm=algorithm, depth_parameter=1)
        assert (circuit.evaluate(a, b) == exact(a, b)).all()

    def test_identity_and_zero_matrices(self):
        n = 2
        circuit = build_matmul_circuit(n, bit_width=2, depth_parameter=1)
        identity = np.eye(n, dtype=int)
        zero = np.zeros((n, n), dtype=int)
        some = np.array([[3, -2], [1, 0]])
        assert (circuit.evaluate(identity, some) == some.astype(object)).all()
        assert (circuit.evaluate(zero, some) == 0).all()

    def test_reference_helper(self, rng):
        a = rng.integers(-2, 3, (2, 2))
        b = rng.integers(-2, 3, (2, 2))
        circuit = build_matmul_circuit(2, bit_width=2, depth_parameter=1)
        assert (circuit.reference(a, b) == exact(a, b)).all()


class TestResourceBounds:
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_depth_is_4t_plus_1(self, d):
        circuit = build_matmul_circuit(4, bit_width=1, depth_parameter=d)
        t = circuit.schedule.t_steps
        assert t <= d
        assert circuit.circuit.depth == 4 * t + 1
        assert circuit.circuit.depth <= 4 * d + 1

    def test_outputs_cover_all_entries(self):
        circuit = build_matmul_circuit(2, bit_width=1, depth_parameter=1)
        labels = circuit.circuit.output_labels
        for i in range(2):
            for j in range(2):
                assert any(label.startswith(f"C[{i}][{j}]") for label in labels)

    def test_metadata(self):
        circuit = build_matmul_circuit(2, bit_width=1, depth_parameter=1)
        assert circuit.circuit.metadata["kind"] == "matmul"
        assert circuit.circuit.metadata["schedule"] == list(circuit.schedule.levels)

    def test_wrong_size_inputs_rejected(self):
        circuit = build_matmul_circuit(2, bit_width=1, depth_parameter=1)
        with pytest.raises(ValueError):
            circuit.evaluate(np.zeros((3, 3), dtype=int), np.zeros((3, 3), dtype=int))

    def test_entries_exceeding_bit_width_rejected(self):
        circuit = build_matmul_circuit(2, bit_width=1, depth_parameter=1)
        with pytest.raises(ValueError):
            circuit.evaluate(np.full((2, 2), 5), np.zeros((2, 2), dtype=int))
