"""Tests for the Theta(N^3) baselines of Section 1 (experiment E4)."""

import math

import numpy as np
import pytest

from repro.core.naive_circuits import (
    build_naive_matmul_circuit,
    build_naive_trace_circuit,
    build_naive_triangle_circuit,
)
from repro.triangles.counting import triangle_count
from repro.triangles.generators import erdos_renyi_adjacency


class TestNaiveTriangleCircuit:
    def test_gate_count_is_exactly_choose_3_plus_1(self):
        for n in (3, 4, 5, 8, 10):
            circuit = build_naive_triangle_circuit(n, 1)
            assert circuit.circuit.size == math.comb(n, 3) + 1

    def test_depth_is_two(self):
        assert build_naive_triangle_circuit(6, 2).circuit.depth == 2

    def test_inputs_are_vertex_pairs(self):
        circuit = build_naive_triangle_circuit(6, 1)
        assert circuit.circuit.n_inputs == math.comb(6, 2)

    def test_decision_on_random_graphs(self, rng):
        for _ in range(5):
            adjacency = erdos_renyi_adjacency(6, 0.5, rng)
            triangles = triangle_count(adjacency)
            for tau in (max(1, triangles - 1), max(1, triangles), triangles + 1):
                circuit = build_naive_triangle_circuit(6, tau)
                assert circuit.evaluate(adjacency) == (triangles >= tau)

    def test_complete_graph(self):
        n = 6
        adjacency = np.ones((n, n), dtype=int) - np.eye(n, dtype=int)
        circuit = build_naive_triangle_circuit(n, math.comb(n, 3))
        assert circuit.evaluate(adjacency) is True
        circuit = build_naive_triangle_circuit(n, math.comb(n, 3) + 1)
        assert circuit.evaluate(adjacency) is False

    def test_too_few_vertices_rejected(self):
        with pytest.raises(ValueError):
            build_naive_triangle_circuit(2, 1)

    def test_wrong_adjacency_shape_rejected(self):
        circuit = build_naive_triangle_circuit(4, 1)
        with pytest.raises(ValueError):
            circuit.evaluate(np.zeros((5, 5), dtype=int))


class TestNaiveMatmulCircuit:
    def test_matches_exact_product(self, rng):
        for n in (2, 3):
            a = rng.integers(-3, 4, (n, n))
            b = rng.integers(-3, 4, (n, n))
            circuit = build_naive_matmul_circuit(n, bit_width=2)
            assert (circuit.evaluate(a, b) == a.astype(object) @ b.astype(object)).all()

    def test_depth_is_three(self):
        assert build_naive_matmul_circuit(2, 1).circuit.depth == 3

    def test_size_grows_cubically(self):
        small = build_naive_matmul_circuit(2, 1).circuit.size
        large = build_naive_matmul_circuit(4, 1).circuit.size
        # 8x the products; sums grow a bit slower.
        assert large > 6 * small


class TestNaiveTraceCircuit:
    def test_matches_exact_trace(self, rng):
        n = 3
        matrix = rng.integers(-2, 3, (n, n))
        trace = int(np.trace(matrix.astype(object) @ matrix.astype(object) @ matrix.astype(object)))
        for tau in (trace - 1, trace, trace + 1):
            circuit = build_naive_trace_circuit(n, tau, bit_width=2)
            assert circuit.evaluate(matrix) == (trace >= tau)

    def test_depth_is_two(self):
        assert build_naive_trace_circuit(2, 1, 1).circuit.depth == 2

    def test_works_on_non_power_of_two_sizes(self, rng):
        # Unlike the fast construction, the naive circuit has no power-of-T restriction.
        matrix = rng.integers(0, 2, (3, 3))
        trace = int(np.trace(matrix.astype(object) @ matrix.astype(object) @ matrix.astype(object)))
        circuit = build_naive_trace_circuit(3, max(trace, 1), bit_width=1)
        assert circuit.evaluate(matrix) == (trace >= max(trace, 1))
