"""Tests for the level-selection schedules of Lemma 4.3 / Theorems 4.4, 4.5."""

import math

import pytest

from repro.core.schedule import (
    LevelSchedule,
    constant_depth_schedule,
    direct_schedule,
    every_k_schedule,
    loglog_schedule,
    schedule_for,
)
from repro.fastmm.naive_algorithm import naive_algorithm
from repro.fastmm.sparsity import sparsity_parameters
from repro.fastmm.strassen import strassen_2x2


class TestLevelSchedule:
    def test_must_start_at_zero(self):
        with pytest.raises(ValueError):
            LevelSchedule((1, 2))

    def test_must_strictly_increase(self):
        with pytest.raises(ValueError):
            LevelSchedule((0, 2, 2))

    def test_deltas_and_steps(self):
        schedule = LevelSchedule((0, 2, 3))
        assert schedule.t_steps == 2
        assert schedule.leaf_level == 3
        assert schedule.deltas() == [2, 1]
        assert "levels" in schedule.describe()


class TestLogLogSchedule:
    @pytest.mark.parametrize("exponent", [1, 2, 3, 4, 6, 8, 10])
    def test_reaches_leaves(self, strassen, exponent):
        n = 2 ** exponent
        schedule = loglog_schedule(strassen, n)
        assert schedule.levels[0] == 0
        assert schedule.leaf_level == exponent

    def test_depth_grows_like_log_log(self, strassen):
        # Theorem 4.4: t = O(log log N); check monotone, slow growth.
        steps = {e: loglog_schedule(strassen, 2 ** e).t_steps for e in (2, 4, 8, 16, 32, 64)}
        assert steps[64] <= steps[32] + 2
        gamma = sparsity_parameters(strassen).side_A.gamma
        for e, t in steps.items():
            bound = math.floor(math.log(max(e, 2), 1.0 / gamma)) + 2
            assert t <= bound

    def test_levels_follow_geometric_formula(self, strassen):
        gamma = sparsity_parameters(strassen).side_A.gamma
        schedule = loglog_schedule(strassen, 2 ** 10)
        for i, level in enumerate(schedule.levels[1:-1], start=1):
            assert level == min(10, math.ceil((1 - gamma ** i) * 10))

    def test_rejects_non_power_sizes(self, strassen):
        with pytest.raises(ValueError):
            loglog_schedule(strassen, 12)


class TestConstantDepthSchedule:
    @pytest.mark.parametrize("d", [1, 2, 3, 4, 6])
    @pytest.mark.parametrize("exponent", [1, 3, 6, 10])
    def test_at_most_d_steps_and_reaches_leaves(self, strassen, d, exponent):
        schedule = constant_depth_schedule(strassen, 2 ** exponent, d)
        assert schedule.leaf_level == exponent
        assert schedule.t_steps <= d

    def test_larger_d_never_uses_fewer_levels_than_one(self, strassen):
        schedule = constant_depth_schedule(strassen, 2 ** 8, 4)
        assert schedule.t_steps >= 2  # with d=4 and N=256 several levels are selected

    def test_invalid_d(self, strassen):
        with pytest.raises(ValueError):
            constant_depth_schedule(strassen, 8, 0)

    def test_naive_algorithm_degenerates_to_single_jump(self):
        schedule = constant_depth_schedule(naive_algorithm(2), 16, 3)
        assert schedule.levels == (0, 4)

    def test_rho_exceeds_loglog_rho(self, strassen):
        constant = constant_depth_schedule(strassen, 2 ** 8, 3)
        loglog = loglog_schedule(strassen, 2 ** 8)
        assert constant.rho >= loglog.rho


class TestOtherSchedules:
    def test_direct_schedule(self, strassen):
        assert direct_schedule(strassen, 16).levels == (0, 4)

    def test_every_k_schedule(self, strassen):
        assert every_k_schedule(strassen, 2 ** 7, 2).levels == (0, 2, 4, 6, 7)
        assert every_k_schedule(strassen, 2 ** 6, 3).levels == (0, 3, 6)

    def test_every_k_invalid(self, strassen):
        with pytest.raises(ValueError):
            every_k_schedule(strassen, 8, 0)

    def test_schedule_for_dispatch(self, strassen):
        assert schedule_for(strassen, 16).kind == "loglog"
        assert schedule_for(strassen, 16, depth_parameter=2).kind == "constant-depth"
