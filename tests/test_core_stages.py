"""Tests for the three circuit stages: leaf trees, leaf products, recombination."""

import numpy as np
import pytest

from repro.arithmetic.signed import SignedBinaryNumber
from repro.circuits.builder import CircuitBuilder
from repro.circuits.simulator import CompiledCircuit
from repro.core.leaf_builder import build_tree_levels, matrix_of_inputs
from repro.core.product_stage import build_leaf_products
from repro.core.recombine import build_product_tree
from repro.core.schedule import LevelSchedule, direct_schedule, every_k_schedule
from repro.core.trees import edge_matrices, iter_paths, relative_functional
from repro.util.encoding import MatrixEncoding


def setup_matrix_inputs(builder, n, bit_width, label):
    wires = builder.allocate_inputs(n * n * 2 * bit_width, label)
    encoding = MatrixEncoding(n, bit_width, offset=wires[0])
    return encoding, matrix_of_inputs(encoding)


def leaf_oracle(algorithm, side, matrix, path):
    """Exact value of a leaf of T_side for the given matrix and path."""
    edges = edge_matrices(algorithm, side)
    functional = relative_functional(edges, path)
    return sum(coeff * int(matrix[p, q]) for (p, q), coeff in functional.items())


class TestMatrixOfInputs:
    def test_wraps_input_wires(self):
        builder = CircuitBuilder()
        encoding, values = setup_matrix_inputs(builder, 2, 2, "A")
        assert values.shape == (2, 2)
        assert isinstance(values[0, 0], SignedBinaryNumber)
        assert values[1, 1].pos.bit_nodes == tuple(encoding.entry_wires(1, 1)[0])


class TestLeafBuilder:
    @pytest.mark.parametrize("schedule_levels", [(0, 2), (0, 1, 2)])
    @pytest.mark.parametrize("side", ["A", "B", "C"])
    def test_leaves_match_oracle(self, strassen, rng, schedule_levels, side):
        n, bit_width = 4, 2
        builder = CircuitBuilder()
        encoding, root = setup_matrix_inputs(builder, n, bit_width, "A")
        schedule = LevelSchedule(schedule_levels)
        leaves = build_tree_levels(builder, strassen, side, root, schedule)
        circuit = builder.build()

        matrix = rng.integers(-3, 4, (n, n))
        node_values = CompiledCircuit(circuit).evaluate(encoding.encode(matrix)).node_values
        for path in iter_paths(strassen.r, 2):
            expected = leaf_oracle(strassen, side, matrix, path)
            assert leaves[path].value(node_values) == expected, (side, path)

    def test_leaf_count(self, strassen):
        builder = CircuitBuilder()
        _, root = setup_matrix_inputs(builder, 4, 1, "A")
        leaves = build_tree_levels(builder, strassen, "A", root, LevelSchedule((0, 2)))
        assert len(leaves) == strassen.r ** 2

    def test_depth_is_two_per_selected_level(self, strassen):
        for levels in [(0, 2), (0, 1, 2)]:
            builder = CircuitBuilder()
            _, root = setup_matrix_inputs(builder, 4, 1, "A")
            build_tree_levels(builder, strassen, "A", root, LevelSchedule(levels))
            assert builder.build().depth == 2 * (len(levels) - 1)

    def test_schedule_must_match_matrix_size(self, strassen):
        builder = CircuitBuilder()
        _, root = setup_matrix_inputs(builder, 4, 1, "A")
        with pytest.raises(ValueError):
            build_tree_levels(builder, strassen, "A", root, LevelSchedule((0, 3)))


class TestProductStage:
    def test_products_match_oracle(self, strassen, rng):
        n, bit_width = 2, 2
        builder = CircuitBuilder()
        enc_a, root_a = setup_matrix_inputs(builder, n, bit_width, "A")
        enc_b, root_b = setup_matrix_inputs(builder, n, bit_width, "B")
        schedule = direct_schedule(strassen, n)
        leaves_a = build_tree_levels(builder, strassen, "A", root_a, schedule)
        leaves_b = build_tree_levels(builder, strassen, "B", root_b, schedule)
        products = build_leaf_products(builder, [leaves_a, leaves_b])
        circuit = builder.build()

        a = rng.integers(-3, 4, (n, n))
        b = rng.integers(-3, 4, (n, n))
        inputs = np.concatenate([enc_a.encode(a), enc_b.encode(b)])
        node_values = CompiledCircuit(circuit).evaluate(inputs).node_values
        for path in iter_paths(strassen.r, 1):
            expected = leaf_oracle(strassen, "A", a, path) * leaf_oracle(strassen, "B", b, path)
            assert products[path].value(node_values) == expected

    def test_requires_at_least_two_trees(self, strassen):
        builder = CircuitBuilder()
        _, root = setup_matrix_inputs(builder, 2, 1, "A")
        leaves = build_tree_levels(builder, strassen, "A", root, direct_schedule(strassen, 2))
        with pytest.raises(ValueError):
            build_leaf_products(builder, [leaves])

    def test_mismatched_paths_rejected(self, strassen):
        builder = CircuitBuilder()
        _, root = setup_matrix_inputs(builder, 2, 1, "A")
        leaves = build_tree_levels(builder, strassen, "A", root, direct_schedule(strassen, 2))
        truncated = dict(list(leaves.items())[:-1])
        with pytest.raises(ValueError):
            build_leaf_products(builder, [leaves, truncated])

    def test_product_stage_adds_one_layer(self, strassen):
        builder = CircuitBuilder()
        _, root_a = setup_matrix_inputs(builder, 2, 1, "A")
        _, root_b = setup_matrix_inputs(builder, 2, 1, "B")
        schedule = direct_schedule(strassen, 2)
        leaves_a = build_tree_levels(builder, strassen, "A", root_a, schedule)
        depth_before = builder.build().depth
        leaves_b = build_tree_levels(builder, strassen, "B", root_b, schedule)
        build_leaf_products(builder, [leaves_a, leaves_b])
        assert builder.build().depth == depth_before + 1


class TestRecombination:
    @pytest.mark.parametrize("levels", [(0, 2), (0, 1, 2)])
    def test_full_product_pipeline(self, strassen, rng, levels):
        n, bit_width = 4, 1
        builder = CircuitBuilder()
        enc_a, root_a = setup_matrix_inputs(builder, n, bit_width, "A")
        enc_b, root_b = setup_matrix_inputs(builder, n, bit_width, "B")
        schedule = LevelSchedule(levels)
        leaves_a = build_tree_levels(builder, strassen, "A", root_a, schedule)
        leaves_b = build_tree_levels(builder, strassen, "B", root_b, schedule)
        products = build_leaf_products(builder, [leaves_a, leaves_b])
        entries = build_product_tree(builder, strassen, products, schedule, n)
        circuit = builder.build()

        a = rng.integers(0, 2, (n, n))
        b = rng.integers(0, 2, (n, n))
        inputs = np.concatenate([enc_a.encode(a), enc_b.encode(b)])
        node_values = CompiledCircuit(circuit).evaluate(inputs).node_values
        expected = a.astype(object) @ b.astype(object)
        for i in range(n):
            for j in range(n):
                assert entries[i, j].value(node_values) == expected[i, j]

    def test_recombination_schedule_mismatch(self, strassen):
        builder = CircuitBuilder()
        _, root_a = setup_matrix_inputs(builder, 2, 1, "A")
        _, root_b = setup_matrix_inputs(builder, 2, 1, "B")
        schedule = direct_schedule(strassen, 2)
        leaves_a = build_tree_levels(builder, strassen, "A", root_a, schedule)
        leaves_b = build_tree_levels(builder, strassen, "B", root_b, schedule)
        products = build_leaf_products(builder, [leaves_a, leaves_b])
        with pytest.raises(ValueError):
            build_product_tree(builder, strassen, products, schedule, 4)

    def test_every_k_schedule_also_works(self, strassen, rng):
        # The ablation schedule is functionally correct, just less gate-efficient.
        n = 4
        builder = CircuitBuilder()
        enc_a, root_a = setup_matrix_inputs(builder, n, 1, "A")
        enc_b, root_b = setup_matrix_inputs(builder, n, 1, "B")
        schedule = every_k_schedule(strassen, n, 1)
        leaves_a = build_tree_levels(builder, strassen, "A", root_a, schedule)
        leaves_b = build_tree_levels(builder, strassen, "B", root_b, schedule)
        products = build_leaf_products(builder, [leaves_a, leaves_b])
        entries = build_product_tree(builder, strassen, products, schedule, n)
        circuit = builder.build()
        a = rng.integers(0, 2, (n, n))
        b = rng.integers(0, 2, (n, n))
        node_values = CompiledCircuit(circuit).evaluate(
            np.concatenate([enc_a.encode(a), enc_b.encode(b)])
        ).node_values
        expected = a.astype(object) @ b.astype(object)
        assert all(
            entries[i, j].value(node_values) == expected[i, j] for i in range(n) for j in range(n)
        )
