"""Tests for the Theorem 4.4 / 4.5 trace-threshold circuits (experiments E6/E7)."""

import numpy as np
import pytest

from repro.core.schedule import constant_depth_schedule, loglog_schedule
from repro.core.trace_circuit import TraceCircuit, build_trace_circuit, default_bit_width
from repro.fastmm.winograd import winograd_2x2


def reference_trace(matrix) -> int:
    m = np.asarray(matrix).astype(object)
    return int(np.trace(m @ m @ m))


class TestDefaults:
    def test_default_bit_width_is_log_n(self):
        assert default_bit_width(2) == 1
        assert default_bit_width(8) == 3
        assert default_bit_width(16) == 4

    def test_metadata_recorded(self):
        tc = build_trace_circuit(2, 5, bit_width=1, depth_parameter=1)
        assert tc.circuit.metadata["kind"] == "trace"
        assert tc.circuit.metadata["algorithm"] == "strassen"


class TestCorrectness:
    @pytest.mark.parametrize("n,bit_width", [(2, 1), (2, 2), (4, 1), (4, 2)])
    def test_decision_matches_exact_trace(self, rng, n, bit_width):
        high = (1 << bit_width) - 1
        matrix = rng.integers(-high, high + 1, (n, n))
        trace = reference_trace(matrix)
        for tau in (trace - 1, trace, trace + 1):
            circuit = build_trace_circuit(n, tau, bit_width=bit_width, depth_parameter=2)
            assert circuit.evaluate(matrix) == (trace >= tau)

    def test_binary_matrices_with_loglog_schedule(self, rng, strassen):
        n = 4
        matrix = rng.integers(0, 2, (n, n))
        trace = reference_trace(matrix)
        circuit = build_trace_circuit(
            n, max(trace, 1), bit_width=1, schedule=loglog_schedule(strassen, n)
        )
        assert circuit.evaluate(matrix) == (trace >= max(trace, 1))

    def test_other_algorithm(self, rng):
        matrix = rng.integers(-1, 2, (4, 4))
        trace = reference_trace(matrix)
        circuit = build_trace_circuit(
            4, trace, bit_width=1, algorithm=winograd_2x2(), depth_parameter=2
        )
        assert circuit.evaluate(matrix) is True

    def test_reference_helpers(self, rng):
        matrix = rng.integers(-1, 2, (2, 2))
        circuit = build_trace_circuit(2, 0, bit_width=1, depth_parameter=1)
        assert circuit.reference_trace(matrix) == reference_trace(matrix)
        assert circuit.reference(matrix) == (reference_trace(matrix) >= 0)

    def test_batch_evaluation(self, rng):
        n, tau = 2, 3
        circuit = build_trace_circuit(n, tau, bit_width=2, depth_parameter=1)
        matrices = [rng.integers(-3, 4, (n, n)) for _ in range(6)]
        results = circuit.evaluate_batch(matrices)
        assert results.tolist() == [reference_trace(m) >= tau for m in matrices]


class TestResourceBounds:
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_depth_is_within_theorem_bound(self, d):
        circuit = build_trace_circuit(4, 1, bit_width=1, depth_parameter=d)
        # Our construction achieves 2t + 2 <= 2d + 2, within the 2d + 5 bound.
        assert circuit.circuit.depth <= 2 * d + 5
        assert circuit.circuit.depth == 2 * circuit.schedule.t_steps + 2

    def test_depth_independent_of_n_for_fixed_d(self):
        depths = {
            n: build_trace_circuit(n, 1, bit_width=1, depth_parameter=2).circuit.depth
            for n in (2, 4, 8)
        }
        assert depths[8] <= 2 * 2 + 2
        assert len(set(depths.values())) <= 2  # small-N schedules may use fewer levels

    def test_single_output(self):
        circuit = build_trace_circuit(2, 2, bit_width=1, depth_parameter=1)
        assert len(circuit.circuit.outputs) == 1

    def test_share_gates_never_increases_size(self):
        plain = build_trace_circuit(4, 3, bit_width=1, depth_parameter=2)
        shared = build_trace_circuit(4, 3, bit_width=1, depth_parameter=2, share_gates=True)
        assert shared.circuit.size <= plain.circuit.size

    def test_share_gates_preserves_semantics(self, rng):
        matrix = rng.integers(0, 2, (4, 4))
        trace = reference_trace(matrix)
        shared = build_trace_circuit(4, trace, bit_width=1, depth_parameter=2, share_gates=True)
        assert shared.evaluate(matrix) is True
