"""Tests for the Figure 2 trees and equation (3)/(5) identities (experiment E2)."""

import numpy as np
import pytest

from repro.core.trees import (
    edge_matrices,
    edge_term_counts,
    functional_weight_sum,
    iter_paths,
    leaf_functionals,
    path_size,
    relative_functional,
    subtree_size_sum,
)
from repro.fastmm.sparsity import sparsity_parameters
from repro.fastmm.strassen import strassen_2x2
from repro.util.bits import bits


class TestEdgeMatrices:
    def test_sides_map_to_tensors(self, strassen):
        assert (edge_matrices(strassen, "A")[0] == strassen.u[0]).all()
        assert (edge_matrices(strassen, "B")[3] == strassen.v[3]).all()
        assert (edge_matrices(strassen, "C")[5] == strassen.w[:, :, 5]).all()

    def test_invalid_side(self, strassen):
        with pytest.raises(ValueError):
            edge_matrices(strassen, "X")

    def test_term_counts_match_definition_2_1(self, strassen):
        params = sparsity_parameters(strassen)
        assert tuple(edge_term_counts(strassen, "A")) == params.a
        assert tuple(edge_term_counts(strassen, "B")) == params.b
        assert tuple(edge_term_counts(strassen, "C")) == params.c


class TestPaths:
    def test_number_of_paths_is_r_to_the_h(self, strassen):
        assert len(list(iter_paths(strassen.r, 2))) == 49
        assert len(list(iter_paths(strassen.r, 0))) == 1

    def test_path_size_is_product_of_edge_labels(self, strassen):
        counts = edge_term_counts(strassen, "A")
        assert path_size(counts, (0, 1)) == counts[0] * counts[1]
        assert path_size(counts, ()) == 1


class TestRelativeFunctional:
    def test_empty_path_is_identity(self, strassen):
        assert relative_functional(edge_matrices(strassen, "A"), ()) == {(0, 0): 1}

    def test_figure_2_example(self, strassen):
        """The worked example of Figure 2: the node reached via M7 twice in T_A.

        (A12 - A22)12 - (A12 - A22)22 = (A12)12 - (A22)12 - (A12)22 + (A22)22,
        a weighted sum of 4 N/T^2 x N/T^2 blocks of A.  In 0-based block
        coordinates of the 4x4 grid:
        (A12)12 -> (0, 3), (A12)22 -> (1, 3), (A22)12 -> (2, 3), (A22)22 -> (3, 3).
        """
        edges = edge_matrices(strassen, "A")
        functional = relative_functional(edges, (6, 6))  # M7's A-pattern applied twice
        assert functional == {(0, 3): 1, (2, 3): -1, (1, 3): -1, (3, 3): 1}

    def test_number_of_terms_bounded_by_path_size(self, strassen):
        counts = edge_term_counts(strassen, "A")
        edges = edge_matrices(strassen, "A")
        for path in iter_paths(strassen.r, 2):
            functional = relative_functional(edges, path)
            assert len(functional) <= path_size(counts, path)

    def test_functional_evaluates_the_right_linear_combination(self, strassen, rng):
        """Leaf functionals applied to A must reproduce the recursive algorithm's scalars."""
        n = 4
        a = rng.integers(-5, 6, (n, n))
        edges = edge_matrices(strassen, "A")
        for path in [(0, 0), (3, 5), (6, 6), (2, 4)]:
            functional = relative_functional(edges, path)
            # Direct evaluation via the recursive definition of T_A.
            matrix = a.astype(object)
            for index in path:
                t = strassen.t
                k = matrix.shape[0] // t
                acc = np.zeros((k, k), dtype=object)
                for p in range(t):
                    for q in range(t):
                        coefficient = int(strassen.u[index, p, q])
                        if coefficient:
                            acc = acc + coefficient * matrix[p * k : (p + 1) * k, q * k : (q + 1) * k]
                matrix = acc
            expected = matrix[0, 0]
            got = sum(coeff * int(a[p, q]) for (p, q), coeff in functional.items())
            assert got == expected


class TestEquationThree:
    """Equation (3): sum of size(u) over a subtree equals s_A^delta (multinomial theorem)."""

    @pytest.mark.parametrize("side", ["A", "B", "C"])
    @pytest.mark.parametrize("delta", [1, 2, 3])
    def test_enumerated_sum_matches_closed_form(self, strassen, side, delta):
        counts = edge_term_counts(strassen, side)
        enumerated = sum(path_size(counts, path) for path in iter_paths(strassen.r, delta))
        assert enumerated == subtree_size_sum(counts, delta)

    def test_strassen_values(self, strassen):
        counts = edge_term_counts(strassen, "A")
        assert subtree_size_sum(counts, 1) == 12
        assert subtree_size_sum(counts, 2) == 144


class TestLeafFunctionals:
    def test_leaf_count_is_n_to_the_omega(self, strassen):
        leaves = list(leaf_functionals(strassen, "A", 2))
        assert len(leaves) == strassen.r ** 2

    def test_weight_sums_bound_entry_growth(self, strassen):
        # Equation (2): entries at level h need at most b + bits(T^{2h}) bits.
        for _, functional in leaf_functionals(strassen, "A", 2):
            assert functional_weight_sum(functional) <= strassen.t ** (2 * 2)
            assert bits(functional_weight_sum(functional)) <= bits(strassen.t ** 4)
