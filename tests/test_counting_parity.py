"""Counting-model parity: dry-run counts must equal the built circuits.

The whole point of running the unchanged constructions against
:class:`CountingBuilder` is that the reported size/depth/edges/fan-in and
per-tag counts *cannot* drift from the real builders.  With the counting
builder now riding the bulk/template fast path, that guarantee is load
bearing — this suite pins it across the construction knobs (``stages``,
``vectorize``, schedules) for both the matmul and the trace circuits.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.gate_count_model import count_matmul_circuit, count_trace_circuit
from repro.core.matmul_circuit import build_matmul_circuit
from repro.core.trace_circuit import build_trace_circuit


def _tag_counts(circuit):
    cols = circuit.columnar()
    store = circuit.store
    counts = {}
    for code, count in enumerate(np.bincount(cols.tag_codes).tolist()):
        tag = store.tag_of_code(code)
        if tag and count:
            counts[tag] = count
    return counts


def _assert_cost_matches(cost, circuit):
    stats = circuit.stats()
    assert cost.size == stats.size
    assert cost.depth == stats.depth
    assert cost.edges == stats.edges
    assert cost.max_fan_in == stats.max_fan_in
    assert cost.n_inputs == stats.n_inputs
    assert cost.by_tag == _tag_counts(circuit)


@given(
    n=st.sampled_from([2, 4]),
    stages=st.integers(min_value=1, max_value=2),
    bit_width=st.integers(min_value=1, max_value=2),
    depth_parameter=st.integers(min_value=1, max_value=2),
    count_vectorized=st.booleans(),
    build_vectorized=st.booleans(),
)
@settings(max_examples=20, deadline=None)
def test_count_matmul_matches_built_stats(
    n, stages, bit_width, depth_parameter, count_vectorized, build_vectorized
):
    cost = count_matmul_circuit(
        n,
        bit_width=bit_width,
        depth_parameter=depth_parameter,
        stages=stages,
        vectorize=count_vectorized,
    )
    built = build_matmul_circuit(
        n,
        bit_width=bit_width,
        depth_parameter=depth_parameter,
        stages=stages,
        vectorize=build_vectorized,
    )
    _assert_cost_matches(cost, built.circuit)


@given(
    n=st.sampled_from([2, 4]),
    stages=st.integers(min_value=1, max_value=2),
    tau=st.integers(min_value=-3, max_value=8),
    count_vectorized=st.booleans(),
    build_vectorized=st.booleans(),
)
@settings(max_examples=20, deadline=None)
def test_count_trace_matches_built_stats(
    n, stages, tau, count_vectorized, build_vectorized
):
    cost = count_trace_circuit(
        n, tau=tau, depth_parameter=1, stages=stages, vectorize=count_vectorized
    )
    built = build_trace_circuit(
        n, tau, depth_parameter=1, stages=stages, vectorize=build_vectorized
    )
    _assert_cost_matches(cost, built.circuit)


def test_count_default_schedule_matches_built():
    # The log-log default schedule exercises multi-level recombination.
    cost = count_matmul_circuit(8)
    built = build_matmul_circuit(8)
    _assert_cost_matches(cost, built.circuit)


def test_counting_paths_agree_with_each_other():
    fast = count_matmul_circuit(4, depth_parameter=2)
    slow = count_matmul_circuit(4, depth_parameter=2, vectorize=False)
    assert fast == slow
