"""Tests for the persistent on-disk compile-artifact cache.

The contract under test: a restored artifact is indistinguishable from a
fresh compile (INV-8).  Everything here pins one side of that — spill and
restore are bit-identical across backends, torn or tampered artifacts are
rejected rather than trusted, crashed writers leave only ``.tmp-*`` litter
that pruning sweeps, and an engine pointed at a warm store compiles
nothing at all.
"""

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.circuits.builder import CircuitBuilder
from repro.engine import (
    ARTIFACT_VERSION,
    DiskArtifactStore,
    Engine,
    EngineConfig,
)

SRC = Path(__file__).parent.parent / "src"

BACKENDS = ("sparse", "dense", "exact")


def parity_circuit(n_bits, name="parity"):
    builder = CircuitBuilder(name=f"{name}{n_bits}")
    inputs = builder.allocate_inputs(n_bits)
    at_least = [builder.add_gate(inputs, [1] * n_bits, k) for k in range(1, n_bits + 1)]
    weights = [1 if k % 2 == 1 else -1 for k in range(1, n_bits + 1)]
    out = builder.add_gate(at_least, weights, 1)
    builder.set_outputs([out], ["parity"])
    return builder.build()


class _SharedArrayProgram:
    """Module-level (hence picklable) program with two views of one array."""

    backend_name = "shared"
    n_inputs = 1
    n_nodes = 1
    outputs = [0]

    def __init__(self):
        self.first = np.arange(4096, dtype=np.int64)  # 32 KiB: own .npy file
        self.second = self.first  # same object: must spill once
        self.small = np.arange(8, dtype=np.int64)  # 64 B: packed sidecar
        self.small_again = self.small  # same object: one pack entry
        self.fortran = np.asfortranarray(
            np.arange(12, dtype=np.int32).reshape(3, 4)
        )


@pytest.fixture
def store(tmp_path):
    return DiskArtifactStore(str(tmp_path / "artifacts"))


def _compile(circuit, backend):
    with Engine(EngineConfig(backend=backend)) as engine:
        return engine.compile(circuit)


class TestSpillRestore:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_restored_programs_bit_identical_all_backends(self, store, rng, backend):
        # 40 bits puts the CSR index arrays over the externalization
        # threshold, so the memmap path is exercised, not just the pickle.
        circuit = parity_circuit(40)
        program = _compile(circuit, backend)
        key_hash = circuit.structural_hash()
        assert store.put(key_hash, backend, program) is True
        restored = store.get(key_hash, backend)
        assert restored is not None
        assert type(restored) is type(program)
        batch = rng.integers(0, 2, size=(40, 17))
        fresh = program.run(batch)
        again = restored.run(batch)
        assert fresh.dtype == again.dtype
        assert np.array_equal(fresh, again)

    def test_put_existing_key_is_a_noop(self, store):
        circuit = parity_circuit(5)
        program = _compile(circuit, "sparse")
        key_hash = circuit.structural_hash()
        assert store.put(key_hash, "sparse", program) is True
        assert store.put(key_hash, "sparse", program) is False
        assert store.stats().artifacts == 1

    def test_arrays_externalized_and_sharing_preserved(self, store):
        assert store.put("h" * 8, "shared", _SharedArrayProgram()) is True
        (entry,) = store.entries()
        names = sorted(os.listdir(entry.path))
        # One .npy for the one distinct large array; the small arrays land
        # in the packed sidecar, not inline in the pickle.
        assert names == ["0.npy", "meta.json", "pack.bin", "program.pkl"]
        restored = store.get("h" * 8, "shared")
        assert restored.first is restored.second  # sharing survived the spill
        assert isinstance(restored.first, np.memmap)
        assert np.array_equal(restored.first, np.arange(4096, dtype=np.int64))
        # Packed arrays restore as views of one shared map: the two
        # references may be distinct view objects, but they are backed by
        # the same bytes of the same map (no data duplication).
        assert restored.small.base is restored.small_again.base
        assert restored.small.__array_interface__ == (
            restored.small_again.__array_interface__
        )
        assert np.array_equal(restored.small, np.arange(8, dtype=np.int64))
        assert restored.fortran.flags.f_contiguous  # layout round-trips
        assert np.array_equal(
            restored.fortran, np.arange(12, dtype=np.int32).reshape(3, 4)
        )

    def test_contains_entries_and_stats(self, store):
        assert not store.contains("nope", "sparse")
        circuit = parity_circuit(4)
        program = _compile(circuit, "sparse")
        key_hash = circuit.structural_hash()
        store.put(key_hash, "sparse", program, circuit=circuit)
        assert store.contains(key_hash, "sparse")
        (entry,) = store.entries()
        assert entry.structural_hash == key_hash
        assert entry.backend == "sparse"
        assert entry.version == ARTIFACT_VERSION
        assert entry.has_circuit
        stats = store.stats()
        assert stats.artifacts == 1
        assert stats.total_bytes == entry.bytes > 0
        assert stats.tmp_dirs == 0

    def test_bundled_circuit_restores_equivalent(self, store, rng):
        circuit = parity_circuit(6)
        program = _compile(circuit, "sparse")
        key_hash = circuit.structural_hash()
        store.put(key_hash, "sparse", program, circuit=circuit)
        loaded = store.get_circuit(key_hash, "sparse")
        assert loaded is not None
        assert loaded.structural_hash() == key_hash


class TestIntegrity:
    def _single_artifact(self, store, circuit):
        program = _compile(circuit, "sparse")
        key_hash = circuit.structural_hash()
        store.put(key_hash, "sparse", program)
        (entry,) = store.entries()
        return key_hash, entry.path

    def test_checksum_mismatch_rejected_and_deleted(self, store):
        key_hash, path = self._single_artifact(store, parity_circuit(5))
        pkl = os.path.join(path, "program.pkl")
        blob = bytearray(Path(pkl).read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # flip one byte mid-payload
        Path(pkl).write_bytes(bytes(blob))
        assert store.get(key_hash, "sparse") is None
        assert not os.path.exists(path)  # rejected artifacts are deleted

    def test_tampered_array_file_rejected(self, store):
        circuit = parity_circuit(40)  # big enough to externalize arrays
        key_hash, path = self._single_artifact(store, circuit)
        npy = os.path.join(path, "0.npy")
        assert os.path.isfile(npy)
        with open(npy, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            handle.write(b"\xff")
        assert store.get(key_hash, "sparse") is None
        assert not os.path.exists(path)

    def test_version_mismatch_rejected(self, store):
        key_hash, path = self._single_artifact(store, parity_circuit(5))
        meta_path = os.path.join(path, "meta.json")
        meta = json.loads(Path(meta_path).read_text())
        meta["artifact_version"] = ARTIFACT_VERSION + 1
        Path(meta_path).write_text(json.dumps(meta))
        assert store.get(key_hash, "sparse") is None
        assert not os.path.exists(path)

    def test_truncated_payload_rejected(self, store):
        key_hash, path = self._single_artifact(store, parity_circuit(5))
        pkl = os.path.join(path, "program.pkl")
        with open(pkl, "r+b") as handle:
            handle.truncate(os.path.getsize(pkl) // 2)
        assert store.get(key_hash, "sparse") is None
        assert not os.path.exists(path)


class TestCrashSafety:
    def test_concurrent_writers_exactly_one_publishes(self, tmp_path, rng):
        circuit = parity_circuit(40)
        program = _compile(circuit, "sparse")
        key_hash = circuit.structural_hash()
        directory = str(tmp_path / "artifacts")
        barrier = threading.Barrier(2)
        results = [None, None]

        def writer(slot):
            local = DiskArtifactStore(directory, sweep=False)
            barrier.wait()
            results[slot] = local.put(key_hash, "sparse", program)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # One writer published; the loser of the os.replace race (or of the
        # pre-check) discarded its own staging directory.
        assert sum(bool(r) for r in results) == 1
        store = DiskArtifactStore(directory)
        assert store.stats().tmp_dirs == 0
        restored = store.get(key_hash, "sparse")
        batch = rng.integers(0, 2, size=(40, 9))
        assert np.array_equal(restored.run(batch), program.run(batch))

    def test_kill_during_write_leaves_only_tmp_litter(self, tmp_path):
        directory = str(tmp_path / "artifacts")
        child = (
            "import sys\n"
            "import numpy as np\n"
            "from repro.engine import DiskArtifactStore, FaultPlan\n"
            "store = DiskArtifactStore(\n"
            "    sys.argv[1], fault_plan=FaultPlan(artifact_crash_writes=1)\n"
            ")\n"
            "store.put('deadbeef', 'sparse', np.arange(4096, dtype=np.int64))\n"
            "sys.exit(99)  # unreachable: the fault plan kills the put\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", child, directory],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 3, proc.stderr
        store = DiskArtifactStore(directory)  # startup sweep spares young tmp
        stats = store.stats()
        assert stats.artifacts == 0  # nothing was published
        assert stats.tmp_dirs == 1  # the staged artifact is visible litter
        assert store.get("deadbeef", "sparse") is None
        result = store.prune(tmp_max_age_s=0.0)
        assert result["tmp_swept"] == 1
        assert store.stats().tmp_dirs == 0


class TestPruning:
    def _put(self, store, n_bits, backend="sparse"):
        circuit = parity_circuit(n_bits)
        program = _compile(circuit, backend)
        key_hash = circuit.structural_hash()
        store.put(key_hash, backend, program)
        return key_hash

    def test_prune_evicts_oldest_mtime_first(self, store):
        old = self._put(store, 5)
        new = self._put(store, 6)
        entries = {e.structural_hash: e for e in store.entries()}
        os.utime(entries[old].path, (1, 1))  # force "old" to be the LRU tail
        result = store.prune(max_bytes=entries[new].bytes)
        assert result["artifacts_removed"] == 1
        assert not store.contains(old, "sparse")
        assert store.contains(new, "sparse")

    def test_get_refreshes_recency_for_lru(self, store):
        first = self._put(store, 5)
        second = self._put(store, 6)
        for entry in store.entries():
            os.utime(entry.path, (1, 1))
        assert store.get(first, "sparse") is not None  # refreshes mtime
        (tail,) = [e for e in store.entries() if e.structural_hash == second]
        store.prune(max_bytes=tail.bytes)
        assert store.contains(first, "sparse")  # recently read: survived
        assert not store.contains(second, "sparse")

    def test_max_bytes_cap_applies_after_put(self, tmp_path):
        capped = DiskArtifactStore(str(tmp_path / "artifacts"), max_bytes=0)
        self._put(capped, 5)
        assert capped.stats().artifacts == 0  # pruned straight back out

    def test_clear_removes_everything(self, store):
        self._put(store, 5)
        self._put(store, 6)
        assert store.clear() == 2
        assert store.stats().artifacts == 0


class TestEngineIntegration:
    def _config(self, tmp_path, backend, **overrides):
        return EngineConfig(
            backend=backend,
            artifact_cache=True,
            artifact_dir=str(tmp_path / "artifacts"),
            **overrides,
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cold_start_restores_without_compiling(self, tmp_path, rng, backend):
        batch = rng.integers(0, 2, size=(8, 13))
        with Engine(self._config(tmp_path, backend)) as warm:
            expected = warm.evaluate(parity_circuit(8), batch).node_values
            assert warm.compile_calls == 1
        # A brand-new engine process-equivalent: empty memory cache, same
        # artifact directory.  The compile must come off disk.
        with Engine(self._config(tmp_path, backend)) as cold:
            result = cold.evaluate(parity_circuit(8), batch).node_values
            assert cold.compile_calls == 0
            info = cold.cache_info()
            assert info.disk_hits == 1
        assert np.array_equal(result, expected)

    def test_cache_size_zero_still_restores_from_disk(self, tmp_path):
        circuit = parity_circuit(6)
        with Engine(self._config(tmp_path, "sparse", cache_size=0)) as warm:
            warm.compile(circuit)  # spilled to disk despite no memory slots
            assert warm.compile_calls == 1
        with Engine(self._config(tmp_path, "sparse", cache_size=0)) as cold:
            cold.compile(circuit)
            cold.compile(circuit)
            assert cold.compile_calls == 0
            assert cold.cache_info().disk_hits == 2  # nothing retained in memory

    def test_rejected_artifact_falls_back_to_compile_and_republish(
        self, tmp_path, rng
    ):
        circuit = parity_circuit(6)
        with Engine(self._config(tmp_path, "sparse")) as warm:
            warm.compile(circuit)
            store = warm.artifact_store
            (entry,) = store.entries()
            pkl = os.path.join(entry.path, "program.pkl")
            blob = bytearray(Path(pkl).read_bytes())
            blob[-1] ^= 0xFF
            Path(pkl).write_bytes(bytes(blob))
        with Engine(self._config(tmp_path, "sparse")) as cold:
            program = cold.compile(circuit)
            assert cold.compile_calls == 1  # tampered artifact not trusted
            # ... and the recompile republished a good artifact.
            restored = cold.artifact_store.get(circuit.structural_hash(), "sparse")
            batch = rng.integers(0, 2, size=(6, 7))
            assert np.array_equal(restored.run(batch), program.run(batch))

    def test_compile_entry_exposes_the_disk_key(self, tmp_path):
        circuit = parity_circuit(6)
        with Engine(self._config(tmp_path, "sparse")) as engine:
            program, key = engine.compile_entry(circuit)
            assert key == (circuit.structural_hash(), "sparse")
            assert engine.artifact_store.contains(*key)
            assert program is engine.compile(circuit)
