"""Tests for the execution engine: backends, cache, scheduler, spiking mode.

The central invariant is cross-backend equivalence: every backend must
produce bit-identical ``node_values`` / ``outputs`` / ``energy`` to the
gate-by-gate reference ``ThresholdCircuit.evaluate_slow`` on any circuit and
any batch.  The Hypothesis properties below randomize both.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.energy import measure_circuit_energy
from repro.circuits.builder import CircuitBuilder
from repro.circuits.simulator import CompiledCircuit, build_layer_plan, simulate
from repro.engine import (
    BackendError,
    Engine,
    EngineConfig,
    compute_spike_trace,
    default_engine,
    evaluate_batched,
    iter_column_chunks,
    select_backend_name,
    set_default_engine,
)

BACKENDS = ("sparse", "dense", "exact")


def build_random_circuit(data, max_weight=5, with_outputs=True):
    """Draw a random threshold circuit (same shape as the simulator tests)."""
    n_inputs = data.draw(st.integers(min_value=1, max_value=5))
    n_gates = data.draw(st.integers(min_value=1, max_value=12))
    builder = CircuitBuilder()
    builder.allocate_inputs(n_inputs)
    for g in range(n_gates):
        available = n_inputs + g
        fan_in = data.draw(st.integers(min_value=0, max_value=min(4, available)))
        sources = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=available - 1),
                min_size=fan_in,
                max_size=fan_in,
                unique=True,
            )
        )
        weights = data.draw(
            st.lists(
                st.integers(min_value=-max_weight, max_value=max_weight),
                min_size=fan_in,
                max_size=fan_in,
            )
        )
        threshold = data.draw(st.integers(min_value=-10, max_value=10))
        builder.add_gate(sources, weights, threshold)
    circuit = builder.build()
    if with_outputs and circuit.size:
        circuit.set_outputs([circuit.n_nodes - 1])
    return circuit


def slow_reference(circuit, batch):
    """Column-by-column evaluate_slow, stacked to (n_nodes, batch)."""
    return np.stack(
        [circuit.evaluate_slow(list(batch[:, j])) for j in range(batch.shape[1])],
        axis=1,
    )


def parity_circuit(n_bits):
    builder = CircuitBuilder(name="parity")
    inputs = builder.allocate_inputs(n_bits)
    at_least = [builder.add_gate(inputs, [1] * n_bits, k) for k in range(1, n_bits + 1)]
    weights = [1 if k % 2 == 1 else -1 for k in range(1, n_bits + 1)]
    out = builder.add_gate(at_least, weights, 1)
    builder.set_outputs([out], ["parity"])
    return builder.build()


def huge_weight_circuit():
    builder = CircuitBuilder()
    inputs = builder.allocate_inputs(2)
    huge = 1 << 70
    gate = builder.add_gate(inputs, [huge, -huge], huge)
    builder.set_outputs([gate])
    return builder.build()


class TestCrossBackendEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_all_backends_match_evaluate_slow(self, data):
        circuit = build_random_circuit(data)
        batch_width = data.draw(st.integers(min_value=1, max_value=8))
        batch = np.array(
            data.draw(
                st.lists(
                    st.lists(st.integers(0, 1), min_size=batch_width, max_size=batch_width),
                    min_size=circuit.n_inputs,
                    max_size=circuit.n_inputs,
                )
            )
        )
        expected_nodes = slow_reference(circuit, batch)
        expected_energy = expected_nodes[circuit.n_inputs :, :].sum(axis=0)
        engine = Engine()
        for backend in BACKENDS:
            result = engine.evaluate(circuit, batch, backend=backend)
            assert (result.node_values == expected_nodes).all(), backend
            assert (result.energy == expected_energy).all(), backend
            if circuit.outputs:
                assert (result.outputs == expected_nodes[circuit.outputs, :]).all(), backend

    @settings(max_examples=15, deadline=None)
    @given(st.data())
    def test_exact_backend_with_huge_weights(self, data):
        # Weights way beyond int64: only the exact backend applies, and it
        # must still match the arbitrary-precision reference.
        circuit = build_random_circuit(data, max_weight=1 << 80)
        batch = np.array(
            data.draw(
                st.lists(
                    st.lists(st.integers(0, 1), min_size=4, max_size=4),
                    min_size=circuit.n_inputs,
                    max_size=circuit.n_inputs,
                )
            )
        )
        engine = Engine()
        result = engine.evaluate(circuit, batch, backend="exact")
        assert (result.node_values == slow_reference(circuit, batch)).all()

    def test_exact_backend_with_float_inputs(self):
        # check_batch_inputs accepts float 0.0/1.0; the exact backend must
        # coerce them to ints or w*1.0 rounds in float64 for huge weights.
        builder = CircuitBuilder()
        inputs = builder.allocate_inputs(2)
        w = (1 << 70) + 1
        gate = builder.add_gate(inputs, [w, 0], w)  # fires iff in0, exactly
        builder.set_outputs([gate])
        circuit = builder.build()
        result = Engine().evaluate(circuit, np.array([[1.0], [1.0]]))
        assert result.outputs[0, 0] == 1  # float64 rounding would yield 0

    def test_single_vector_squeeze_matches_compiled_circuit(self, rng):
        circuit = parity_circuit(5)
        engine = Engine()
        compiled = CompiledCircuit(circuit)
        for _ in range(10):
            bits = rng.integers(0, 2, size=5)
            mine = engine.evaluate(circuit, bits)
            theirs = compiled.evaluate(bits)
            assert mine.node_values.shape == theirs.node_values.shape
            assert (mine.node_values == theirs.node_values).all()
            assert mine.energy == theirs.energy

    def test_empty_batch(self):
        circuit = parity_circuit(3)
        engine = Engine()
        result = engine.evaluate(circuit, np.zeros((3, 0), dtype=np.int64))
        assert result.node_values.shape == (circuit.n_nodes, 0)
        assert result.energy.shape == (0,)


class TestCompileCache:
    def test_cache_hit_skips_recompilation(self):
        circuit = parity_circuit(6)
        engine = Engine()
        batch = np.zeros((6, 4), dtype=np.int64)
        engine.evaluate(circuit, batch)
        assert engine.compile_calls == 1
        engine.evaluate(circuit, batch)
        engine.evaluate(circuit, np.ones((6, 2), dtype=np.int64))
        assert engine.compile_calls == 1  # same structure: compiled once
        assert engine.cache_info().hits >= 2

    def test_structurally_identical_rebuild_hits(self):
        engine = Engine()
        engine.evaluate(parity_circuit(6), np.zeros((6, 1), dtype=np.int64))
        engine.evaluate(parity_circuit(6), np.zeros((6, 1), dtype=np.int64))
        assert engine.compile_calls == 1

    def test_different_structure_recompiles(self):
        engine = Engine()
        engine.evaluate(parity_circuit(4), np.zeros((4, 1), dtype=np.int64))
        engine.evaluate(parity_circuit(5), np.zeros((5, 1), dtype=np.int64))
        assert engine.compile_calls == 2

    def test_forced_backend_uses_separate_slot(self):
        circuit = parity_circuit(4)
        engine = Engine()
        engine.evaluate(circuit, np.zeros((4, 1), dtype=np.int64), backend="sparse")
        engine.evaluate(circuit, np.zeros((4, 1), dtype=np.int64), backend="dense")
        assert engine.compile_calls == 2
        engine.evaluate(circuit, np.zeros((4, 1), dtype=np.int64), backend="sparse")
        assert engine.compile_calls == 2

    def test_auto_alias_reuses_resolved_program(self):
        circuit = parity_circuit(4)
        engine = Engine()  # auto resolves to dense for this tiny circuit
        engine.evaluate(circuit, np.zeros((4, 1), dtype=np.int64))
        assert engine.compile_calls == 1
        engine.evaluate(circuit, np.zeros((4, 1), dtype=np.int64), backend="dense")
        assert engine.compile_calls == 1  # auto already compiled the dense program

    def test_auto_compile_costs_one_miss_and_one_slot(self):
        engine = Engine()
        engine.evaluate(parity_circuit(4), np.zeros((4, 1), dtype=np.int64))
        info = engine.cache_info()
        assert info.size == 1
        assert info.misses == 1
        assert engine.compile_calls == 1
        # A second auto evaluation is exactly one counted hit.
        engine.evaluate(parity_circuit(4), np.zeros((4, 1), dtype=np.int64))
        assert engine.cache_info().hits == 1

    def test_lru_eviction(self):
        engine = Engine(EngineConfig(cache_size=2))
        for bits in (3, 4, 5, 3):
            engine.evaluate(parity_circuit(bits), np.zeros((bits, 1), dtype=np.int64))
        # 3 was evicted by 5 (capacity 2), so it compiled twice
        assert engine.compile_calls == 4
        assert engine.cache_info().evictions >= 1

    def test_refresh_of_present_key_never_counts_as_eviction(self):
        # Regression: a put of an already-present key (the template/CSR
        # alias case) used to enter the eviction loop and bump the counter
        # even though nothing left the cache.
        from repro.engine.cache import CompileCache

        cache = CompileCache(2)
        cache.put(("h1", "sparse"), "a")
        cache.put(("h2", "sparse"), "b")
        cache.put(("h1", "sparse"), "a2")  # refresh, not an insert
        info = cache.info()
        assert info.evictions == 0
        assert info.size == 2
        # The refresh also moved h1 to the MRU end: inserting a third key
        # must evict h2, the actual least-recently-used entry.
        cache.put(("h3", "sparse"), "c")
        assert ("h1", "sparse") in cache
        assert ("h2", "sparse") not in cache
        assert cache.info().evictions == 1

    def test_zero_capacity_put_is_a_clean_noop(self):
        # Regression: capacity=0 used to pop from the empty store.
        from repro.engine.cache import CompileCache

        cache = CompileCache(0)
        cache.put(("h1", "sparse"), "a")
        info = cache.info()
        assert len(cache) == 0
        assert info.evictions == 0
        assert cache.get(("h1", "sparse")) is None

    def test_cache_disabled(self):
        engine = Engine(EngineConfig(cache_size=0))
        circuit = parity_circuit(4)
        engine.evaluate(circuit, np.zeros((4, 1), dtype=np.int64))
        engine.evaluate(circuit, np.zeros((4, 1), dtype=np.int64))
        assert engine.compile_calls == 2

    def test_clear_cache(self):
        engine = Engine()
        circuit = parity_circuit(4)
        engine.evaluate(circuit, np.zeros((4, 1), dtype=np.int64))
        engine.clear_cache()
        engine.evaluate(circuit, np.zeros((4, 1), dtype=np.int64))
        assert engine.compile_calls == 2

    def test_default_engine_is_shared_and_replaceable(self):
        previous = set_default_engine(None)
        try:
            assert default_engine() is default_engine()
            mine = Engine()
            set_default_engine(mine)
            assert default_engine() is mine
        finally:
            set_default_engine(previous)


class TestTemplateCacheAliasing:
    """Template and CSR compiles of one circuit must alias to one entry.

    The cache key is (structural_hash, backend) on purpose: the two compile
    paths produce bit-identical programs, so a ``banked=False`` (or even
    ``vectorize=False``) rebuild of the same circuit must *hit* the entry a
    template compile stored — not coexist beside it — and eviction under
    ``cache_size=1`` must never hand back a program for the wrong circuit.
    """

    @staticmethod
    def _engine(**overrides):
        return Engine(
            EngineConfig(
                backend="sparse", template_min_cover=0.0, **overrides
            )
        )

    @staticmethod
    def _build(n=3, **kwargs):
        from repro.core.naive_circuits import build_naive_matmul_circuit

        return build_naive_matmul_circuit(n, bit_width=1, stages=2, **kwargs).circuit

    def test_template_compile_then_unbanked_rebuild_hits_same_entry(self):
        engine = self._engine()
        banked = self._build()
        assert banked.template_blocks  # the compile below is template-tiled
        program = engine.compile(banked)
        assert hasattr(program, "segments")  # template-tiled program form
        assert engine.compile_calls == 1

        stamped = self._build(banked=False)  # PR-2 ablation rebuild
        assert stamped.structural_hash() == banked.structural_hash()
        assert engine.compile(stamped) is program
        legacy = self._build(vectorize=False)  # no template provenance at all
        assert not legacy.template_blocks
        assert engine.compile(legacy) is program
        assert engine.compile_calls == 1
        assert engine.cache_info().hits == 2

    def test_csr_compile_first_then_template_circuit_hits(self):
        engine = self._engine()
        legacy = self._build(vectorize=False)
        program = engine.compile(legacy)
        assert hasattr(program, "layers")  # classic CSR program form
        banked = self._build()
        assert engine.compile(banked) is program
        assert engine.compile_calls == 1

    def test_maxsize_one_eviction_never_returns_stale_program(self):
        engine = self._engine(cache_size=1)
        circuit_a = self._build(2)
        circuit_b = self._build(3)
        inputs_a = np.ones((circuit_a.n_inputs, 1), dtype=np.int64)

        program_a = engine.compile(circuit_a)
        assert engine.compile(circuit_b) is not program_a  # A evicted
        assert engine.cache_info().evictions == 1
        # Recompiling A must rebuild, not resurrect anything stale.
        fresh_a = engine.compile(circuit_a)
        assert engine.compile_calls == 3
        assert fresh_a.n_nodes == circuit_a.n_nodes
        values = fresh_a.run(inputs_a)
        expected = circuit_a.evaluate_slow(list(inputs_a[:, 0]))
        assert (values[:, 0] == expected).all()

    def test_template_and_csr_programs_bit_identical_for_cached_circuit(self):
        # The aliasing above is only sound because both compile paths agree
        # bit for bit; pin that directly on the engine entry points.
        circuit = self._build()
        inputs = np.ones((circuit.n_inputs, 2), dtype=np.int64)
        inputs[::2, 1] = 0
        with_templates = self._engine().evaluate(circuit, inputs)
        without = Engine(
            EngineConfig(backend="sparse", template_compile=False)
        ).evaluate(circuit, inputs)
        assert (with_templates.node_values == without.node_values).all()
        assert (with_templates.energy == without.energy).all()


class TestStructuralHash:
    def test_stable_and_label_insensitive(self):
        a = parity_circuit(5)
        b = parity_circuit(5)
        assert a.structural_hash() == b.structural_hash()
        b.name = "renamed"
        b.metadata["note"] = "irrelevant"
        b.output_labels = ["other"]
        assert a.structural_hash() == b.structural_hash()

    def test_changes_with_structure(self):
        a = parity_circuit(5)
        b = parity_circuit(4)
        assert a.structural_hash() != b.structural_hash()

    def test_invalidated_by_mutation(self):
        circuit = parity_circuit(4)
        before = circuit.structural_hash()
        circuit.add_threshold_gate([0], [1], 1)
        assert circuit.structural_hash() != before
        with_outputs = circuit.structural_hash()
        circuit.set_outputs([circuit.n_nodes - 1])
        assert circuit.structural_hash() != with_outputs


class TestBackendSelection:
    def test_small_circuit_goes_dense(self):
        circuit = parity_circuit(4)
        engine = Engine()
        assert engine.compile(circuit).backend_name == "dense"

    def test_large_sparse_circuit_goes_sparse(self):
        circuit = parity_circuit(8)
        engine = Engine(EngineConfig(dense_node_limit=4, dense_density=0.99))
        assert engine.compile(circuit).backend_name == "sparse"

    def test_overflowing_circuit_goes_exact(self):
        circuit = huge_weight_circuit()
        engine = Engine()
        assert engine.compile(circuit).backend_name == "exact"
        assert engine.evaluate(circuit, np.array([1, 0])).outputs[0] == 1
        assert engine.evaluate(circuit, np.array([1, 1])).outputs[0] == 0

    def test_forcing_fast_backend_on_overflow_raises(self):
        circuit = huge_weight_circuit()
        engine = Engine()
        with pytest.raises(BackendError):
            engine.compile(circuit, backend="dense")
        with pytest.raises(BackendError):
            engine.compile(circuit, backend="sparse")

    def test_unknown_backend_rejected(self):
        engine = Engine()
        with pytest.raises(ValueError):
            engine.compile(parity_circuit(3), backend="gpu")
        with pytest.raises(ValueError):
            EngineConfig(backend="gpu")

    def test_selector_is_pure_heuristic(self):
        circuit = parity_circuit(4)
        plan = build_layer_plan(circuit)
        stats = circuit.stats()
        assert select_backend_name(plan, stats, EngineConfig()) == "dense"
        assert (
            select_backend_name(plan, stats, EngineConfig(dense_node_limit=1, dense_density=0.99))
            == "sparse"
        )


class TestScheduler:
    def test_iter_column_chunks(self):
        assert list(iter_column_chunks(10, 4)) == [(0, 4), (4, 8), (8, 10)]
        assert list(iter_column_chunks(4, 4)) == [(0, 4)]
        assert list(iter_column_chunks(0, 4)) == []
        with pytest.raises(ValueError):
            list(iter_column_chunks(10, 0))

    def test_chunked_matches_unchunked(self, rng):
        circuit = parity_circuit(6)
        batch = rng.integers(0, 2, size=(6, 37))
        whole = Engine(EngineConfig(chunk_size=64)).evaluate(circuit, batch)
        chunked = Engine(EngineConfig(chunk_size=5)).evaluate(circuit, batch)
        tiny = Engine(EngineConfig(chunk_size=1)).evaluate(circuit, batch)
        assert (chunked.node_values == whole.node_values).all()
        assert (tiny.node_values == whole.node_values).all()
        assert (chunked.energy == whole.energy).all()

    def test_parallel_matches_serial(self, rng):
        circuit = parity_circuit(6)
        batch = rng.integers(0, 2, size=(6, 48))
        serial = Engine().evaluate(circuit, batch)
        parallel = Engine(
            EngineConfig(chunk_size=8, max_workers=2, parallel_threshold=16)
        ).evaluate(circuit, batch)
        assert (parallel.node_values == serial.node_values).all()
        assert (parallel.energy == serial.energy).all()

    def test_workers_narrow_chunk_width(self, rng):
        # With workers requested, the scheduler must shard even when the
        # batch is smaller than chunk_size — no caller-side chunk math.
        circuit = parity_circuit(6)
        batch = rng.integers(0, 2, size=(6, 10))
        config = EngineConfig(chunk_size=2048, max_workers=2, parallel_threshold=1)
        sharded = Engine(config).evaluate(circuit, batch)
        serial = Engine().evaluate(circuit, batch)
        assert (sharded.node_values == serial.node_values).all()
        assert (sharded.energy == serial.energy).all()

    def test_pool_gated_behind_threshold(self, rng):
        # Below parallel_threshold the pool must not be required; results
        # still agree (we can't observe process count, but the path differs).
        circuit = parity_circuit(4)
        batch = rng.integers(0, 2, size=(4, 8))
        config = EngineConfig(chunk_size=2, max_workers=4, parallel_threshold=1000)
        result = Engine(config).evaluate(circuit, batch)
        assert (result.node_values == Engine().evaluate(circuit, batch).node_values).all()

    def test_evaluate_batched_direct(self, rng):
        circuit = parity_circuit(5)
        engine = Engine()
        program = engine.compile(circuit, backend="sparse")
        batch = rng.integers(0, 2, size=(5, 13))
        node_values = evaluate_batched(program, batch, EngineConfig(chunk_size=4))
        assert (node_values == slow_reference(circuit, batch)).all()


class TestSpikingMode:
    def test_trace_consistent_with_energy(self, rng):
        circuit = parity_circuit(6)
        batch = rng.integers(0, 2, size=(6, 20))
        engine = Engine()
        trace = engine.spike_trace(circuit, batch)
        result = engine.evaluate(circuit, batch)
        assert (trace.energy == result.energy).all()
        assert (trace.spikes_per_layer.sum(axis=0) == result.energy).all()
        assert trace.batch == 20
        assert trace.gates_per_layer.sum() == circuit.size
        assert trace.gate_fire_counts.shape == (circuit.size,)
        assert (trace.gate_fire_counts == result.node_values[6:, :].sum(axis=1)).all()

    def test_cross_check_against_analysis_energy(self, rng):
        circuit = parity_circuit(6)
        vectors = [rng.integers(0, 2, size=6) for _ in range(12)]
        report = measure_circuit_energy(circuit, vectors)
        trace = Engine().spike_trace(circuit, np.stack(vectors, axis=1))
        assert float(trace.energy.mean()) == pytest.approx(report.mean_energy)
        assert int(trace.energy.max()) == report.max_energy
        assert int(trace.energy.min()) == report.min_energy

    def test_synaptic_events_counted_per_wire(self):
        builder = CircuitBuilder()
        inputs = builder.allocate_inputs(2)
        g1 = builder.add_gate(inputs, [1, 1], 1)  # OR
        g2 = builder.add_gate([inputs[0], g1], [1, 1], 2)  # AND(in0, or)
        builder.set_outputs([g2])
        circuit = builder.build()
        trace = Engine().spike_trace(circuit, np.array([[1], [0]]))
        # layer 1 receives in0=1, in1=0 -> 1 event; layer 2 receives in0=1, g1=1 -> 2
        assert trace.synaptic_events_per_layer[:, 0].tolist() == [1, 2]
        assert trace.energy[0] == 2

    def test_as_rows_and_dict(self, rng):
        circuit = parity_circuit(4)
        trace = Engine().spike_trace(circuit, rng.integers(0, 2, size=(4, 6)))
        rows = trace.as_rows()
        assert [row["layer"] for row in rows] == sorted(row["layer"] for row in rows)
        summary = trace.as_dict()
        assert summary["samples"] == 6
        assert summary["mean_energy"] == pytest.approx(float(trace.energy.mean()))

    def test_trace_pure_function_of_node_values(self, rng):
        circuit = parity_circuit(5)
        batch = rng.integers(0, 2, size=(5, 7))
        plan = build_layer_plan(circuit)
        node_values = CompiledCircuit(circuit).evaluate(batch).node_values
        trace = compute_spike_trace(plan, node_values)
        assert (trace.energy == Engine().evaluate(circuit, batch).energy).all()
        with pytest.raises(ValueError):
            compute_spike_trace(plan, node_values[:-1, :])


class TestCompiledCircuitFix:
    def test_unsafe_circuit_keeps_no_layer_matrices(self):
        # Satellite fix: a huge weight in a *later* layer must not leave
        # earlier layers holding compiled sparse matrices.
        builder = CircuitBuilder()
        inputs = builder.allocate_inputs(2)
        safe = builder.add_gate(inputs, [1, 1], 1)  # layer 1: safe
        huge = builder.add_gate([safe], [1 << 70], 1)  # layer 2: overflows
        builder.set_outputs([huge])
        circuit = builder.build()
        compiled = CompiledCircuit(circuit)
        assert not compiled.uses_fast_path
        assert all(layer["matrix"] is None for layer in compiled._layers)
        # ...and evaluation still works through the exact path.
        assert compiled.evaluate(np.array([1, 0])).outputs[0] == 1

    def test_simulate_wrapper_routes_through_engine(self):
        previous = set_default_engine(None)
        try:
            circuit = parity_circuit(4)
            bits = np.array([1, 0, 1, 1])
            result = simulate(circuit, bits)
            assert result.outputs[0] == 1  # three ones -> odd parity
            assert default_engine().compile_calls >= 1
            # a private engine can be injected
            mine = Engine(EngineConfig(backend="sparse"))
            simulate(circuit, bits, engine=mine)
            assert mine.compile_calls == 1
        finally:
            set_default_engine(previous)


class TestZeroWidthBatches:
    def test_engine_evaluate_zero_width(self):
        circuit = parity_circuit(4)
        engine = Engine()
        result = engine.evaluate(circuit, np.zeros((4, 0), dtype=np.int8))
        assert result.node_values.shape == (circuit.n_nodes, 0)
        assert result.node_values.dtype == np.int8
        assert result.outputs.shape[-1] == 0

    def test_evaluate_batched_zero_width_all_backends(self):
        circuit = parity_circuit(3)
        for backend in BACKENDS:
            engine = Engine(EngineConfig(backend=backend))
            result = engine.evaluate(circuit, np.zeros((3, 0), dtype=np.int8))
            assert result.node_values.shape == (circuit.n_nodes, 0)

    def test_trace_evaluate_batch_empty(self):
        from repro.core.trace_circuit import build_trace_circuit

        trace = build_trace_circuit(2, 1, depth_parameter=1)
        out = trace.evaluate_batch([])
        assert out.shape == (0,)
        assert out.dtype == bool


class TestConfigValidation:
    """Every numeric knob must reject nonsense instead of mis-sharding."""

    def test_defaults_are_valid(self):
        EngineConfig()

    @pytest.mark.parametrize(
        "field, bad",
        [
            ("cache_size", -1),
            ("chunk_size", 0),
            ("chunk_size", -3),
            ("max_workers", -1),
            ("parallel_threshold", 0),
            ("parallel_threshold", -5),
            ("dense_node_limit", -1),
            ("dense_density", 0.0),
            ("dense_density", -0.5),
            ("dense_density", float("nan")),
            ("template_min_cover", -0.1),
            ("template_min_cover", 1.1),
            ("shared_memory_min_bytes", -1),
            ("service_queue_depth", 0),
            ("service_queue_depth", -2),
            ("service_store_size", 0),
            ("service_store_size", -1),
        ],
    )
    def test_bad_values_rejected(self, field, bad):
        with pytest.raises(ValueError):
            EngineConfig(**{field: bad})

    def test_with_overrides_revalidates(self):
        config = EngineConfig()
        with pytest.raises(ValueError):
            config.with_overrides(parallel_threshold=0)
        assert config.with_overrides(parallel_threshold=2).parallel_threshold == 2

    def test_boundary_values_accepted(self):
        config = EngineConfig(
            parallel_threshold=1,
            dense_node_limit=0,
            shared_memory_min_bytes=0,
            service_queue_depth=1,
            service_store_size=1,
        )
        assert config.service_store_size == 1


class TestSchedulerWorkerGuard:
    def test_uninitialized_worker_raises_runtime_error(self, monkeypatch):
        # A RuntimeError, not an assert: the guard must survive ``python -O``.
        from repro.engine import scheduler

        monkeypatch.setattr(scheduler, "_WORKER_PROGRAM", None)
        with pytest.raises(RuntimeError, match="before initialization"):
            scheduler._worker_run(np.zeros((2, 1), dtype=np.int8))


class TestActivityPlanMemoization:
    def test_trace_plan_built_once_with_cache_disabled(self, monkeypatch, rng):
        # Regression: with cache_size=0 the lazily-built ActivityPlan used to
        # be memoized on a _CacheEntry that was never stored, so every
        # spike_trace call on a template-compiled circuit rebuilt the plan.
        from repro.core.naive_circuits import build_naive_matmul_circuit
        from repro.engine.spiking import ActivityPlan

        circuit = build_naive_matmul_circuit(3, bit_width=1, stages=2).circuit
        assert circuit.template_blocks  # precondition: template compile path

        calls = []
        original = ActivityPlan.from_circuit.__func__

        def counting(cls, target):
            calls.append(target)
            return original(cls, target)

        monkeypatch.setattr(ActivityPlan, "from_circuit", classmethod(counting))
        engine = Engine(
            EngineConfig(backend="sparse", cache_size=0, template_min_cover=0.0)
        )
        batch = rng.integers(0, 2, size=(circuit.n_inputs, 3))
        first = engine.spike_trace(circuit, batch)
        second = engine.spike_trace(circuit, batch)
        assert len(calls) == 1  # built lazily, exactly once
        assert (first.energy == second.energy).all()
        # The plan is genuinely the lazily-built one (template compiles skip
        # the global layer pass), and results match a fresh default engine.
        reference = Engine().spike_trace(circuit, batch)
        assert (first.energy == reference.energy).all()
        assert (first.spikes_per_layer == reference.spikes_per_layer).all()

    def test_cached_entries_not_mutated_by_trace(self, rng):
        # The compile-cache entry must stay exactly as compiled: lazily-built
        # plans live on the engine (keyed by hash), not on shared entries.
        from repro.core.naive_circuits import build_naive_matmul_circuit

        circuit = build_naive_matmul_circuit(3, bit_width=1, stages=2).circuit
        engine = Engine(
            EngineConfig(backend="sparse", template_min_cover=0.0)
        )
        entry = engine._entry(circuit)
        assert entry.activity is None  # template compile: no global plan
        batch = rng.integers(0, 2, size=(circuit.n_inputs, 2))
        engine.spike_trace(circuit, batch)
        assert entry.activity is None
        assert circuit.structural_hash() in engine._activity_plans

    def test_clear_cache_drops_memoized_plans(self, rng):
        from repro.core.naive_circuits import build_naive_matmul_circuit

        circuit = build_naive_matmul_circuit(3, bit_width=1, stages=2).circuit
        engine = Engine(
            EngineConfig(backend="sparse", template_min_cover=0.0)
        )
        engine.spike_trace(circuit, rng.integers(0, 2, size=(circuit.n_inputs, 2)))
        assert engine._activity_plans
        engine.clear_cache()
        assert not engine._activity_plans


class TestTelemetry:
    """EngineConfig.telemetry wires the engine into the process registry."""

    @pytest.fixture(autouse=True)
    def _restore_registry(self):
        from repro import obs

        yield
        obs.disable()

    def test_config_enables_process_telemetry(self, rng):
        from repro import obs

        circuit = parity_circuit(4)
        engine = Engine(EngineConfig(backend="sparse", telemetry=True))
        assert engine.metrics.enabled
        assert engine.metrics is obs.get_registry()
        batch = rng.integers(0, 2, size=(4, 8))
        engine.evaluate(circuit, batch)
        snap = engine.metrics.snapshot()
        assert snap["counters"].get("cache.misses{backend=sparse}") == 1
        assert snap["counters"].get("engine.eval_columns{backend=sparse}") == 8
        compile_series = [
            key for key in snap["histograms"] if key.startswith("engine.compile_s")
        ]
        assert compile_series
        assert snap["histograms"][compile_series[0]]["count"] == 1

    def test_second_engine_does_not_reset_registry(self, rng):
        engine = Engine(EngineConfig(backend="sparse", telemetry=True))
        engine.metrics.counter("sentinel").inc()
        other = Engine(EngineConfig(backend="dense", telemetry=True))
        assert other.metrics is engine.metrics
        assert other.metrics.value("sentinel") == 1

    def test_plan_memo_counters(self, rng):
        # Template-streaming compiles build the activity plan lazily (CSR
        # entries carry it), so force the template path to exercise the memo.
        from repro.core.naive_circuits import build_naive_matmul_circuit

        circuit = build_naive_matmul_circuit(3, bit_width=1, stages=2).circuit
        engine = Engine(
            EngineConfig(backend="sparse", telemetry=True, template_min_cover=0.0)
        )
        batch = rng.integers(0, 2, size=(circuit.n_inputs, 2))
        # Cached entries are never mutated by a trace, so the second call
        # re-enters the memo and hits.
        engine.spike_trace(circuit, batch)
        engine.spike_trace(circuit, batch)
        registry = engine.metrics
        assert registry.value("engine.plan_memo.misses") >= 1
        assert registry.value("engine.plan_memo.hits") >= 1

    def test_telemetry_off_keeps_null_registry(self, rng):
        from repro.obs import get_registry

        circuit = parity_circuit(4)
        engine = Engine(EngineConfig(backend="sparse"))
        engine.evaluate(circuit, rng.integers(0, 2, size=(4, 4)))
        assert not engine.metrics.enabled
        assert get_registry().snapshot()["counters"] == {}
