"""Tests for the shipped algorithms, composition and the catalog (experiment E1)."""

import numpy as np
import pytest

from repro.fastmm.catalog import available_algorithms, get_algorithm
from repro.fastmm.compose import compose, self_compose
from repro.fastmm.naive_algorithm import naive_algorithm
from repro.fastmm.recursive import fast_matmul, operation_counts
from repro.fastmm.strassen import strassen_2x2
from repro.fastmm.winograd import winograd_2x2


class TestStrassenFigure1:
    """Figure 1 of the paper, transcribed and verified (experiment E1)."""

    def test_brent_equations(self):
        assert strassen_2x2().verify()

    def test_seven_multiplications(self):
        assert strassen_2x2().r == 7

    def test_exact_2x2_products(self, rng):
        algorithm = strassen_2x2()
        for _ in range(25):
            a = rng.integers(-50, 51, (2, 2))
            b = rng.integers(-50, 51, (2, 2))
            assert (algorithm.apply_once(a, b) == a @ b).all()

    def test_scalar_multiplication_count_is_n_log2_7(self):
        counts = operation_counts(strassen_2x2(), 16)
        assert counts.scalar_multiplications == 7 ** 4
        assert counts.levels == 4

    def test_addition_recurrence_matches_paper(self):
        # T(N) = 7 T(N/2) + 18 (N/2)^2 with T(1) = 0 additions.
        def recurrence(n):
            if n == 1:
                return 0
            return 7 * recurrence(n // 2) + 18 * (n // 2) ** 2

        for n in (2, 4, 8, 16):
            assert operation_counts(strassen_2x2(), n).scalar_additions == recurrence(n)

    def test_operation_counts_require_power_of_t(self):
        with pytest.raises(ValueError):
            operation_counts(strassen_2x2(), 12)


class TestWinograd:
    def test_brent_equations(self):
        assert winograd_2x2().verify()

    def test_same_rank_as_strassen(self):
        assert winograd_2x2().r == 7
        assert abs(winograd_2x2().omega - strassen_2x2().omega) < 1e-12


class TestNaiveAlgorithm:
    def test_rank_is_t_cubed(self):
        for t in (1, 2, 3):
            assert naive_algorithm(t).r == t ** 3

    def test_omega_is_three(self):
        assert abs(naive_algorithm(3).omega - 3.0) < 1e-12

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            naive_algorithm(0)


class TestComposition:
    def test_composed_dimensions(self):
        squared = compose(strassen_2x2(), strassen_2x2())
        assert squared.t == 4 and squared.r == 49

    def test_composed_algorithm_is_correct(self, rng):
        squared = compose(strassen_2x2(), winograd_2x2())
        assert squared.verify()
        a = rng.integers(-5, 6, (4, 4))
        b = rng.integers(-5, 6, (4, 4))
        assert (squared.apply_once(a, b) == a @ b).all()

    def test_composition_preserves_omega(self):
        squared = self_compose(strassen_2x2(), times=1)
        assert abs(squared.omega - strassen_2x2().omega) < 1e-12

    def test_self_compose_zero_times(self):
        assert self_compose(strassen_2x2(), times=0).r == 7

    def test_self_compose_negative_rejected(self):
        with pytest.raises(ValueError):
            self_compose(strassen_2x2(), times=-1)

    def test_heterogeneous_composition(self, rng):
        mixed = compose(strassen_2x2(), naive_algorithm(3))
        assert mixed.t == 6 and mixed.r == 7 * 27
        assert mixed.verify()


class TestCatalog:
    def test_all_registered_algorithms_verify(self):
        for name in available_algorithms():
            assert get_algorithm(name).verify(), name

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_algorithm("does-not-exist")

    def test_expected_names_present(self):
        names = available_algorithms()
        assert {"strassen", "winograd", "naive-2", "naive-3", "strassen-squared"} <= set(names)


class TestRecursiveFastMatmul:
    def test_matches_numpy_for_all_algorithms(self, any_algorithm, rng):
        n = any_algorithm.t ** 2
        a = rng.integers(-9, 10, (n, n))
        b = rng.integers(-9, 10, (n, n))
        assert (fast_matmul(a, b, any_algorithm) == a.astype(object) @ b.astype(object)).all()

    def test_pads_non_power_sizes(self, rng):
        a = rng.integers(-5, 6, (5, 5))
        b = rng.integers(-5, 6, (5, 5))
        assert (fast_matmul(a, b) == a.astype(object) @ b.astype(object)).all()

    def test_large_entries_stay_exact(self):
        a = np.full((4, 4), 10 ** 12, dtype=object)
        b = np.full((4, 4), 10 ** 12, dtype=object)
        result = fast_matmul(a, b)
        assert result[0, 0] == 4 * 10 ** 24

    def test_cutoff_parameter(self, rng):
        a = rng.integers(-5, 6, (8, 8))
        b = rng.integers(-5, 6, (8, 8))
        assert (fast_matmul(a, b, cutoff=4) == a.astype(object) @ b.astype(object)).all()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fast_matmul(np.zeros((2, 2)), np.zeros((4, 4)))
