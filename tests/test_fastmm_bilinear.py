"""Tests for the bilinear-algorithm container and the Brent verifier."""

import numpy as np
import pytest

from repro.fastmm.bilinear import BilinearAlgorithm
from repro.fastmm.naive_algorithm import naive_algorithm
from repro.fastmm.strassen import strassen_2x2


class TestConstruction:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BilinearAlgorithm("bad", 2, np.zeros((7, 3, 3)), np.zeros((7, 2, 2)), np.zeros((2, 2, 7)))
        with pytest.raises(ValueError):
            BilinearAlgorithm("bad", 2, np.zeros((7, 2, 2)), np.zeros((6, 2, 2)), np.zeros((2, 2, 7)))
        with pytest.raises(ValueError):
            BilinearAlgorithm("bad", 2, np.zeros((7, 2, 2)), np.zeros((7, 2, 2)), np.zeros((2, 2, 6)))

    def test_r_and_omega(self):
        algorithm = strassen_2x2()
        assert algorithm.r == 7
        assert algorithm.t == 2
        assert abs(algorithm.omega - np.log2(7)) < 1e-12


class TestBrentVerification:
    def test_valid_algorithms_pass(self, any_algorithm):
        assert any_algorithm.verify()
        assert not any_algorithm.brent_residual().any()

    def test_corrupted_algorithm_fails(self):
        algorithm = strassen_2x2()
        u = algorithm.u.copy()
        u[0, 0, 0] = 2  # break M1
        broken = BilinearAlgorithm("broken", 2, u, algorithm.v, algorithm.w)
        assert not broken.verify()

    def test_naive_any_size(self):
        for t in (1, 2, 3):
            assert naive_algorithm(t).verify()


class TestApplyOnce:
    def test_matches_numpy_product(self, any_algorithm, rng):
        n = any_algorithm.t * 3
        a = rng.integers(-9, 10, (n, n))
        b = rng.integers(-9, 10, (n, n))
        assert (any_algorithm.apply_once(a, b) == a @ b).all()

    def test_requires_divisible_dimension(self, strassen):
        with pytest.raises(ValueError):
            strassen.apply_once(np.zeros((3, 3)), np.zeros((3, 3)))

    def test_requires_matching_shapes(self, strassen):
        with pytest.raises(ValueError):
            strassen.apply_once(np.zeros((4, 4)), np.zeros((2, 2)))


class TestDescriptors:
    def test_multiplication_terms_of_strassen_m1(self, strassen):
        left, right = strassen.multiplication_terms(0)
        assert left == [(0, 0, 1)]                      # A11
        assert sorted(right) == [(0, 1, 1), (1, 1, -1)]  # B12 - B22

    def test_output_terms_of_strassen_c11(self, strassen):
        # C11 = M3 + M4 - M5 + M7
        assert sorted(strassen.output_terms(0, 0)) == [(2, 1), (3, 1), (4, -1), (6, 1)]

    def test_describe_mentions_all_multiplications(self, strassen):
        text = strassen.describe()
        for i in range(1, 8):
            assert f"M{i} =" in text
        assert "C11" in text and "C22" in text
