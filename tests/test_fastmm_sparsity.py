"""Tests for Definition 2.1 and the Section 4.3 constants (experiment E3).

The concrete values quoted in the paper for Strassen's algorithm are the
ground truth here: s_A = s_B = s_C = 12, alpha = 7/12, beta = 3,
gamma ~ 0.491, c ~ 1.585, and the appendix's c'_j = (4, 2, 2, 4).
"""

import math
from fractions import Fraction

import pytest

from repro.fastmm.compose import self_compose
from repro.fastmm.naive_algorithm import naive_algorithm
from repro.fastmm.sparsity import side_parameters, sparsity_parameters
from repro.fastmm.strassen import strassen_2x2
from repro.fastmm.winograd import winograd_2x2


class TestStrassenConstants:
    def test_per_multiplication_counts(self):
        params = sparsity_parameters(strassen_2x2())
        # Figure 1: a_i = #blocks of A in M_i, etc.
        assert params.a == (1, 2, 2, 1, 2, 2, 2)
        assert params.b == (2, 1, 2, 2, 1, 2, 2)
        assert params.c == (2, 2, 2, 2, 2, 1, 1)

    def test_sparsity_sums(self):
        params = sparsity_parameters(strassen_2x2())
        assert params.s_A == params.s_B == params.s_C == 12
        assert params.s == 12

    def test_c_prime_matches_appendix(self):
        # Appendix: c'_1 = 4, c'_2 = 2, c'_3 = 2, c'_4 = 4.
        params = sparsity_parameters(strassen_2x2())
        assert params.c_prime == (4, 2, 2, 4)
        assert sum(params.c_prime) == params.s_C

    def test_alpha_beta(self):
        params = sparsity_parameters(strassen_2x2())
        assert params.side_A.alpha == Fraction(7, 12)
        assert params.side_A.beta == Fraction(3)
        assert params.side_A.alpha_beta == Fraction(7, 4)

    def test_gamma_approximately_0_491(self):
        params = sparsity_parameters(strassen_2x2())
        assert abs(params.side_A.gamma - 0.491) < 2e-3

    def test_c_approximately_1_585(self):
        params = sparsity_parameters(strassen_2x2())
        assert abs(params.side_A.c - 1.585) < 5e-3

    def test_omega_is_log2_7(self):
        params = sparsity_parameters(strassen_2x2())
        assert abs(params.omega - math.log2(7)) < 1e-12

    def test_as_dict_contains_headline_values(self):
        d = sparsity_parameters(strassen_2x2()).as_dict()
        assert d["s"] == 12 and d["r"] == 7 and d["T"] == 2


class TestOtherAlgorithms:
    def test_winograd_has_higher_sparsity(self):
        # Fewer additions does not mean smaller sparsity: Winograd's s is 14.
        strassen = sparsity_parameters(strassen_2x2())
        winograd = sparsity_parameters(winograd_2x2())
        assert winograd.s == 14 > strassen.s
        assert winograd.side_A.gamma > strassen.side_A.gamma

    def test_naive_degenerates_to_gamma_zero(self):
        params = sparsity_parameters(naive_algorithm(2))
        assert params.side_A.alpha == 1
        assert params.side_A.gamma == 0.0

    def test_composed_strassen_keeps_gamma(self):
        squared = sparsity_parameters(self_compose(strassen_2x2(), 1))
        base = sparsity_parameters(strassen_2x2())
        assert squared.s_A == 144  # 12^2
        assert abs(squared.side_A.gamma - base.side_A.gamma) < 1e-12

    def test_gamma_strictly_below_one_for_fast_algorithms(self, any_algorithm):
        params = sparsity_parameters(any_algorithm)
        for side in (params.side_A, params.side_B, params.side_C):
            assert 0.0 <= side.gamma < 1.0


class TestSideParameters:
    def test_invalid_sparsity(self):
        with pytest.raises(ValueError):
            side_parameters(2, 7, 0)

    def test_alpha_above_one_rejected(self):
        with pytest.raises(ValueError):
            side_parameters(2, 7, 6)  # r/s > 1

    def test_beta_below_one_rejected(self):
        with pytest.raises(ValueError):
            side_parameters(3, 8, 8)  # s < T^2
