"""Fault injection against the evaluation service (INV-6 in docs/INVARIANTS.md).

Every test here follows the same shape: activate a :class:`FaultPlan`
through ``EngineConfig(fault_plan=...)``, push real work through a resident
service, and require *bit-identical* results plus the expected recovery
counters — faults may cost retries, respawns, transport downgrades, or
degradation, never bytes.
"""

import os
import time

import numpy as np
import pytest

from repro.engine import (
    DeadlineExceeded,
    Engine,
    EngineConfig,
    EvaluationService,
    FaultPlan,
    ServiceClosed,
    aggressive_plan,
    fault_plan_from_env,
    run_serial,
)
from repro.engine.faults import FAULTS_ENV_VAR

from test_service import parity_circuit, service_config


@pytest.fixture
def rng():
    return np.random.default_rng(2018)


@pytest.fixture
def compiled():
    return Engine().compile(parity_circuit(6), backend="sparse")


def fast_recovery_config(**overrides):
    """Service knobs turned down so recovery is observable within a test."""
    base = dict(
        service_heartbeat_s=0.05,
        service_stall_timeout_s=0.4,
        service_retry_backoff_s=0.01,
        service_task_attempts=25,
    )
    base.update(overrides)
    return service_config(**base)


class TestFaultPlan:
    def test_ordinals_must_be_positive(self):
        with pytest.raises(ValueError, match="kill_before_task"):
            FaultPlan(kill_before_task=0)
        with pytest.raises(ValueError, match="drop_result_tasks"):
            FaultPlan(drop_result_tasks=(3, -1))

    def test_durations_must_be_non_negative(self):
        with pytest.raises(ValueError, match="stall_seconds"):
            FaultPlan(stall_seconds=-0.5)
        with pytest.raises(ValueError, match="delay_result_s"):
            FaultPlan(delay_result_s=-1.0)

    def test_lists_coerced_to_tuples(self):
        plan = FaultPlan(drop_result_tasks=[1, 2], workers=[0])
        assert plan.drop_result_tasks == (1, 2)
        assert plan.workers == (0,)

    def test_applies_to(self):
        assert FaultPlan(kill_before_task=1).applies_to(5)
        scoped = FaultPlan(kill_before_task=1, workers=(0, 2))
        assert scoped.applies_to(0)
        assert not scoped.applies_to(1)

    def test_dict_and_json_round_trip(self):
        plan = aggressive_plan()
        assert FaultPlan.from_dict(plan.as_dict()) == plan
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultPlan.from_dict({"explode_on_tuesdays": True})

    def test_env_round_trip(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        assert fault_plan_from_env() is None
        plan = FaultPlan(install_failures=1, shm_attach_failures=2)
        monkeypatch.setenv(FAULTS_ENV_VAR, plan.to_json())
        assert fault_plan_from_env() == plan

    def test_config_rejects_non_plan(self):
        with pytest.raises(TypeError, match="fault_plan"):
            EngineConfig(fault_plan={"kill_before_task": 3})


class TestWorkerKills:
    def test_kill_before_task_recovers_bit_identically(self, compiled, rng):
        config = fast_recovery_config(fault_plan=FaultPlan(kill_before_task=3))
        batch = rng.integers(0, 2, size=(6, 40))
        with EvaluationService(config) as service:
            result = service.evaluate(compiled, batch)
            stats = service.stats()
        assert np.array_equal(result, compiled.run(batch))
        assert stats.worker_restarts >= 1

    def test_kill_after_task_recovers_bit_identically(self, compiled, rng):
        # The worker computes the chunk, then dies before reporting — the
        # duplicate execution after re-dispatch must be invisible.
        config = fast_recovery_config(fault_plan=FaultPlan(kill_after_task=2))
        batch = rng.integers(0, 2, size=(6, 32))
        with EvaluationService(config) as service:
            result = service.evaluate(compiled, batch)
            stats = service.stats()
        assert np.array_equal(result, compiled.run(batch))
        assert stats.worker_restarts >= 1
        assert stats.retries >= 1

    def test_shm_job_survives_worker_kill_without_leaking(self, compiled, rng):
        # In-flight shared-memory job across a worker death: the re-dispatched
        # task re-attaches (or falls back), and the blocks are unlinked once.
        config = fast_recovery_config(
            shared_memory_min_bytes=64,
            fault_plan=FaultPlan(kill_after_task=1, workers=(0,)),
        )
        batch = rng.integers(0, 2, size=(6, 64))
        before = set(_shm_blocks())
        with EvaluationService(config) as service:
            result = service.evaluate(compiled, batch)
            stats = service.stats()
        assert np.array_equal(result, compiled.run(batch))
        assert stats.shm_jobs >= 1
        assert stats.worker_restarts >= 1
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            leaked = set(_shm_blocks()) - before
            if not leaked:
                break
            time.sleep(0.05)
        assert not leaked, f"leaked shared-memory blocks: {sorted(leaked)}"


class TestLostAndCorruptedMessages:
    def test_dropped_results_are_redispatched(self, compiled, rng):
        config = fast_recovery_config(fault_plan=FaultPlan(drop_result_tasks=(1,)))
        batch = rng.integers(0, 2, size=(6, 24))
        with EvaluationService(config) as service:
            result = service.evaluate(compiled, batch)
            stats = service.stats()
        assert np.array_equal(result, compiled.run(batch))
        assert stats.retries >= 1

    def test_corrupt_result_message_does_not_kill_dispatcher(self, compiled, rng):
        # Regression: a malformed result message used to raise inside the
        # dispatcher thread and silently wedge the whole service; now it is
        # counted, the task is re-dispatched, and later jobs still complete.
        config = fast_recovery_config(fault_plan=FaultPlan(corrupt_result_tasks=(1,)))
        batch = rng.integers(0, 2, size=(6, 24))
        with EvaluationService(config) as service:
            first = service.evaluate(compiled, batch)
            second = service.evaluate(compiled, batch)
            stats = service.stats()
        expected = compiled.run(batch)
        assert np.array_equal(first, expected)
        assert np.array_equal(second, expected)
        assert stats.protocol_errors >= 1

    def test_dropped_dispatch_is_retried(self, compiled, rng):
        config = fast_recovery_config(fault_plan=FaultPlan(drop_dispatch_tasks=(1,)))
        batch = rng.integers(0, 2, size=(6, 24))
        with EvaluationService(config) as service:
            result = service.evaluate(compiled, batch)
            stats = service.stats()
        assert np.array_equal(result, compiled.run(batch))
        assert stats.retries >= 1

    def test_delayed_results_change_nothing(self, compiled, rng):
        config = fast_recovery_config(fault_plan=FaultPlan(delay_result_s=0.02))
        batch = rng.integers(0, 2, size=(6, 16))
        with EvaluationService(config) as service:
            result = service.evaluate(compiled, batch)
        assert np.array_equal(result, compiled.run(batch))


class TestStallsAndDeadlines:
    def test_stalled_worker_is_killed_and_job_completes(self, compiled, rng):
        # Worker 0 wedges inside its first task; only heartbeat-based stall
        # detection can see that (the process is alive), and the dispatch
        # penalty then routes the retry to the healthy worker.
        config = fast_recovery_config(
            fault_plan=FaultPlan(stall_task=1, stall_seconds=30.0, workers=(0,)),
        )
        batch = rng.integers(0, 2, size=(6, 8))
        with EvaluationService(config) as service:
            result = service.evaluate(compiled, batch)
            stats = service.stats()
        assert np.array_equal(result, compiled.run(batch))
        assert stats.stall_kills >= 1

    def test_sub_threshold_stall_is_just_slow(self, compiled, rng):
        config = fast_recovery_config(
            service_stall_timeout_s=5.0,
            fault_plan=FaultPlan(stall_task=1, stall_seconds=0.1),
        )
        batch = rng.integers(0, 2, size=(6, 8))
        with EvaluationService(config) as service:
            result = service.evaluate(compiled, batch)
            stats = service.stats()
        assert np.array_equal(result, compiled.run(batch))
        assert stats.stall_kills == 0
        assert stats.worker_restarts == 0

    def test_job_deadline_raises_deadline_exceeded(self, compiled, rng):
        config = fast_recovery_config(
            fault_plan=FaultPlan(stall_task=1, stall_seconds=30.0)
        )
        batch = rng.integers(0, 2, size=(6, 16))
        with EvaluationService(config) as service:
            with pytest.raises(DeadlineExceeded, match="missed its deadline"):
                service.evaluate(compiled, batch, timeout=0.3)
            stats = service.stats()
        assert stats.deadline_failures >= 1

    def test_deadline_noop_when_job_is_fast(self, compiled, rng):
        batch = rng.integers(0, 2, size=(6, 12))
        with EvaluationService(fast_recovery_config()) as service:
            result = service.evaluate(compiled, batch, timeout=30.0)
        assert np.array_equal(result, compiled.run(batch))

    def test_submit_rejects_non_positive_timeout(self, compiled, rng):
        batch = rng.integers(0, 2, size=(6, 4))
        with EvaluationService(fast_recovery_config()) as service:
            with pytest.raises(ValueError, match="timeout"):
                service.submit(compiled, batch, timeout=0.0)

    def test_run_serial_honors_deadline(self, compiled, rng):
        batch = rng.integers(0, 2, size=(6, 64))
        with pytest.raises(DeadlineExceeded):
            run_serial(compiled, batch, chunk_size=4, deadline=time.monotonic() - 1.0)
        result = run_serial(compiled, batch, chunk_size=4, deadline=time.monotonic() + 60.0)
        assert np.array_equal(result, compiled.run(batch))


class TestTransportAndInstallFaults:
    def test_shm_attach_failures_fall_back_to_pickle(self, compiled, rng):
        # One worker whose every attach fails: the first failure of a task is
        # retried as-is (may be transient), its second failure converts the
        # whole job to pickle transport, which then completes.  (With spare
        # workers and a small failure budget, distinct tasks would each fail
        # once and plain retries would absorb everything.)
        config = fast_recovery_config(
            max_workers=1,
            shared_memory_min_bytes=64,
            fault_plan=FaultPlan(shm_attach_failures=100),
        )
        batch = rng.integers(0, 2, size=(6, 64))
        with EvaluationService(config) as service:
            result = service.evaluate(compiled, batch)
            stats = service.stats()
        assert np.array_equal(result, compiled.run(batch))
        assert stats.shm_jobs >= 1
        assert stats.shm_fallbacks >= 1

    def test_dropped_install_triggers_reinstall(self, compiled, rng):
        config = fast_recovery_config(fault_plan=FaultPlan(install_failures=1))
        batch = rng.integers(0, 2, size=(6, 24))
        with EvaluationService(config) as service:
            result = service.evaluate(compiled, batch)
            stats = service.stats()
        assert np.array_equal(result, compiled.run(batch))
        assert stats.reinstalls >= 1

    def test_plan_activates_from_environment(self, compiled, rng, monkeypatch):
        plan = FaultPlan(install_failures=1)
        monkeypatch.setenv(FAULTS_ENV_VAR, plan.to_json())
        batch = rng.integers(0, 2, size=(6, 24))
        with EvaluationService(fast_recovery_config()) as service:
            result = service.evaluate(compiled, batch)
            stats = service.stats()
        assert np.array_equal(result, compiled.run(batch))
        assert stats.reinstalls >= 1


class TestDegradation:
    def test_degraded_mode_still_bit_identical(self, compiled, rng):
        # Every worker dies before executing anything and the respawn budget
        # is zero, so both slots retire immediately and the service must fall
        # back to in-process serial execution — same bytes, zero workers.
        config = fast_recovery_config(
            service_respawn_budget=0,
            fault_plan=FaultPlan(kill_before_task=1),
        )
        batch = rng.integers(0, 2, size=(6, 24))
        with EvaluationService(config) as service:
            result = service.evaluate(compiled, batch)
            stats = service.stats()
            # Submissions after degradation short-circuit to the serial path.
            again = service.evaluate(compiled, batch)
            final = service.stats()
        expected = compiled.run(batch)
        assert np.array_equal(result, expected)
        assert np.array_equal(again, expected)
        assert stats.degraded
        assert stats.workers == 0
        assert stats.retired_workers == 2
        assert final.degraded_jobs >= 2

    def test_degraded_shm_job_converts_and_unlinks(self, compiled, rng):
        before = set(_shm_blocks())
        config = fast_recovery_config(
            service_respawn_budget=0,
            shared_memory_min_bytes=64,
            fault_plan=FaultPlan(kill_before_task=1),
        )
        batch = rng.integers(0, 2, size=(6, 64))
        with EvaluationService(config) as service:
            result = service.evaluate(compiled, batch)
        assert np.array_equal(result, compiled.run(batch))
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            leaked = set(_shm_blocks()) - before
            if not leaked:
                break
            time.sleep(0.05)
        assert not leaked, f"leaked shared-memory blocks: {sorted(leaked)}"

    def test_respawn_budget_bounds_restarts(self, compiled, rng):
        config = fast_recovery_config(
            service_respawn_budget=1,
            fault_plan=FaultPlan(kill_before_task=1),
        )
        batch = rng.integers(0, 2, size=(6, 16))
        with EvaluationService(config) as service:
            result = service.evaluate(compiled, batch)
            stats = service.stats()
        assert np.array_equal(result, compiled.run(batch))
        # Each of the two slots restarts at most once before retiring.
        assert stats.worker_restarts <= 2
        assert stats.retired_workers == 2


class TestBoundedClose:
    def test_close_returns_promptly_with_wedged_worker(self, compiled, rng):
        # Stall detection is disabled, so the wedged worker would sleep for
        # 60s — close(timeout=...) must terminate it instead of waiting.
        config = fast_recovery_config(
            service_stall_timeout_s=0.0,
            fault_plan=FaultPlan(stall_task=1, stall_seconds=60.0),
        )
        service = EvaluationService(config)
        batch = rng.integers(0, 2, size=(6, 16))
        future = service.submit(compiled, batch)
        time.sleep(0.3)  # let tasks reach the workers and wedge
        start = time.monotonic()
        service.close(wait=False, timeout=2.0)
        elapsed = time.monotonic() - start
        assert elapsed < 8.0
        with pytest.raises(ServiceClosed, match="in flight"):
            future.result(timeout=1.0)

    def test_close_wait_honors_timeout(self, compiled, rng):
        config = fast_recovery_config(
            service_stall_timeout_s=0.0,
            fault_plan=FaultPlan(stall_task=1, stall_seconds=60.0),
        )
        service = EvaluationService(config)
        batch = rng.integers(0, 2, size=(6, 16))
        future = service.submit(compiled, batch)
        start = time.monotonic()
        service.close(wait=True, timeout=1.5)
        elapsed = time.monotonic() - start
        assert elapsed < 8.0
        assert isinstance(future.exception(timeout=1.0), ServiceClosed)


class TestAggressivePlanEndToEnd:
    def test_everything_at_once_stays_bit_identical(self, compiled, rng):
        config = fast_recovery_config(
            shared_memory_min_bytes=256,
            fault_plan=aggressive_plan(),
        )
        batches = [rng.integers(0, 2, size=(6, 40)) for _ in range(4)]
        with EvaluationService(config) as service:
            futures = [service.submit(compiled, batch) for batch in batches]
            results = [future.result(timeout=60.0) for future in futures]
        for batch, result in zip(batches, results):
            assert np.array_equal(result, compiled.run(batch))


def _shm_blocks():
    try:
        names = os.listdir("/dev/shm")
    except OSError:
        return []
    return [name for name in names if name.startswith("psm_")]
