"""Golden-fixture regression tests for the canonical constructions.

The equivalence harness (``test_compile_equivalence``) pins the *internal*
consistency of the construction and compile paths against each other — but
a change that drifts every path in lockstep (a gadget emitting one extra
gate, a depth off by one, an energy regression) would sail through it.
These tests pin the constructions against serialized ground truth instead:
``tests/fixtures/golden_counts.json`` holds the structural hash and the
gate / wire / depth / energy counts of each canonical small construction,
so silent construction drift fails fast with a readable field-by-field diff.

When a change *intentionally* alters a construction, regenerate with::

    GOLDEN_REGEN=1 python -m pytest tests/test_golden_counts.py

and commit the updated fixture together with the change that explains it.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.direct_circuit import build_direct_matmul_circuit
from repro.core.matmul_circuit import build_matmul_circuit
from repro.core.naive_circuits import (
    build_naive_matmul_circuit,
    build_naive_trace_circuit,
    build_naive_triangle_circuit,
)
from repro.core.trace_circuit import build_trace_circuit
from repro.engine import Engine

FIXTURE = Path(__file__).parent / "fixtures" / "golden_counts.json"

CASES = {
    "naive-triangles-n6-tau2": lambda: build_naive_triangle_circuit(6, tau=2).circuit,
    "naive-matmul-n4-b1-stages1": lambda: build_naive_matmul_circuit(
        4, bit_width=1
    ).circuit,
    "naive-matmul-n4-b1-stages2": lambda: build_naive_matmul_circuit(
        4, bit_width=1, stages=2
    ).circuit,
    "naive-trace-n4-b1-tau1": lambda: build_naive_trace_circuit(
        4, tau=1, bit_width=1
    ).circuit,
    "matmul-strassen-n4-b1": lambda: build_matmul_circuit(4, bit_width=1).circuit,
    "trace-strassen-n4-b1-tau0": lambda: build_trace_circuit(
        4, tau=0, bit_width=1
    ).circuit,
    "direct-matmul-n4-b1-stages2": lambda: build_direct_matmul_circuit(
        4, bit_width=1, stages=2
    ).circuit,
}


def _golden_row(circuit) -> dict:
    """Everything a construction must reproduce exactly, as plain JSON."""
    stats = circuit.stats()
    # Deterministic energy probe: the all-ones assignment fires the maximal
    # gate population of these monotone-ish constructions, and a fixed
    # counter pattern catches value-dependent drift.
    ones = np.ones((circuit.n_inputs, 1), dtype=np.int64)
    pattern = (np.arange(circuit.n_inputs, dtype=np.int64) % 2)[:, None]
    inputs = np.concatenate([ones, pattern], axis=1)
    result = Engine().evaluate(circuit, inputs)
    return {
        "structural_hash": circuit.structural_hash(),
        "n_inputs": stats.n_inputs,
        "gates": stats.size,
        "wires": stats.edges,
        "depth": stats.depth,
        "max_fan_in": stats.max_fan_in,
        "max_abs_weight": stats.max_abs_weight,
        "n_outputs": stats.n_outputs,
        "template_blocks": len(circuit.template_blocks),
        "energy_all_ones": int(result.energy[0]),
        "energy_alternating": int(result.energy[1]),
    }


def _load_fixture() -> dict:
    if not FIXTURE.exists():
        pytest.fail(
            f"missing golden fixture {FIXTURE}; regenerate with GOLDEN_REGEN=1"
        )
    return json.loads(FIXTURE.read_text())


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_counts(name):
    row = _golden_row(CASES[name]())
    if os.environ.get("GOLDEN_REGEN") == "1":
        data = json.loads(FIXTURE.read_text()) if FIXTURE.exists() else {}
        data[name] = row
        FIXTURE.parent.mkdir(parents=True, exist_ok=True)
        FIXTURE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated golden row for {name}")
    golden = _load_fixture()
    assert name in golden, f"no golden row for {name}; run with GOLDEN_REGEN=1"
    expected = golden[name]
    diffs = [
        f"  {field}: expected {expected[field]!r}, got {row.get(field)!r}"
        for field in expected
        if row.get(field) != expected[field]
    ]
    extra = [field for field in row if field not in expected]
    if extra:
        diffs.append(f"  fields missing from fixture: {extra}")
    assert not diffs, (
        f"construction drift in {name} "
        f"(GOLDEN_REGEN=1 to accept intentional changes):\n" + "\n".join(diffs)
    )


def test_fixture_has_no_orphan_rows():
    golden = _load_fixture()
    orphans = sorted(set(golden) - set(CASES))
    assert not orphans, f"fixture rows without a test case: {orphans}"
