"""End-to-end integration tests across subsystems (experiment E9).

These tests tie the whole pipeline together: random integer matrices or
graphs, the conventional fast-multiplication oracle, the constructed
threshold circuits, the vectorized simulator, the counting model and the
optimizer all have to agree.
"""

import numpy as np
import pytest

from repro.circuits.optimize import deduplicate_gates, eliminate_dead_gates
from repro.circuits.simulator import CompiledCircuit
from repro.circuits.validate import validate_circuit
from repro.core import (
    build_matmul_circuit,
    build_naive_trace_circuit,
    build_naive_triangle_circuit,
    build_trace_circuit,
    count_matmul_circuit,
)
from repro.fastmm import fast_matmul, get_algorithm
from repro.triangles import erdos_renyi_adjacency, triangle_count
from repro.util.matrices import random_integer_matrix


class TestTraceAgainstNaiveBaseline:
    def test_fast_and_naive_circuits_agree_on_random_graphs(self, rng):
        """E9/E4: both circuit families answer identically on the same graphs."""
        n = 4
        for _ in range(3):
            adjacency = erdos_renyi_adjacency(n, 0.6, rng)
            triangles = triangle_count(adjacency)
            tau = max(1, triangles)
            fast = build_trace_circuit(n, 6 * tau, bit_width=1, depth_parameter=2)
            naive_triangles = build_naive_triangle_circuit(n, tau)
            naive_trace = build_naive_trace_circuit(n, 6 * tau, bit_width=1)
            expected = triangles >= tau
            assert fast.evaluate(adjacency) == expected
            assert naive_triangles.evaluate(adjacency) == expected
            assert naive_trace.evaluate(adjacency) == expected

    def test_structural_validation_of_generated_circuits(self):
        fast = build_trace_circuit(4, 2, bit_width=1, depth_parameter=2)
        report = validate_circuit(fast.circuit, require_outputs=True)
        assert report.ok


class TestMatmulPipeline:
    @pytest.mark.parametrize("algorithm_name", ["strassen", "winograd"])
    def test_circuit_vs_recursive_oracle(self, rng, algorithm_name):
        algorithm = get_algorithm(algorithm_name)
        n, bit_width = 4, 1
        a = random_integer_matrix(n, bit_width, rng=rng)
        b = random_integer_matrix(n, bit_width, rng=rng)
        oracle = fast_matmul(a, b, algorithm)
        circuit = build_matmul_circuit(n, bit_width=bit_width, algorithm=algorithm, depth_parameter=2)
        assert (circuit.evaluate(a, b) == oracle).all()

    def test_optimizer_preserves_matmul_semantics(self, rng):
        n = 2
        original = build_matmul_circuit(n, bit_width=2, depth_parameter=1)
        a = random_integer_matrix(n, 2, rng=rng)
        b = random_integer_matrix(n, 2, rng=rng)
        expected = original.evaluate(a, b)

        deduped, node_map = deduplicate_gates(original.circuit)
        compiled = CompiledCircuit(deduped)
        inputs = original._encode_inputs(a, b)
        node_values = compiled.evaluate(inputs).node_values
        for i in range(n):
            for j in range(n):
                entry = original.entries[i, j]
                got = sum(
                    (1 << pos) * int(node_values[node_map[node]])
                    for pos, node in zip(entry.pos.bit_positions, entry.pos.bit_nodes)
                ) - sum(
                    (1 << pos) * int(node_values[node_map[node]])
                    for pos, node in zip(entry.neg.bit_positions, entry.neg.bit_nodes)
                )
                assert got == expected[i, j]

    def test_dead_gate_elimination_keeps_outputs_working(self, rng):
        n = 2
        original = build_matmul_circuit(n, bit_width=1, depth_parameter=1)
        pruned, node_map = eliminate_dead_gates(original.circuit)
        assert pruned.size <= original.circuit.size
        a = random_integer_matrix(n, 1, rng=rng)
        b = random_integer_matrix(n, 1, rng=rng)
        inputs = original._encode_inputs(a, b)
        node_values = CompiledCircuit(pruned).evaluate(inputs).node_values
        expected = a.astype(object) @ b.astype(object)
        for i in range(n):
            for j in range(n):
                entry = original.entries[i, j]
                got = sum(
                    (1 << pos) * int(node_values[node_map[node]])
                    for pos, node in zip(entry.pos.bit_positions, entry.pos.bit_nodes)
                ) - sum(
                    (1 << pos) * int(node_values[node_map[node]])
                    for pos, node in zip(entry.neg.bit_positions, entry.neg.bit_nodes)
                )
                assert got == expected[i, j]

    def test_counting_model_matches_for_every_algorithm(self):
        for name in ("strassen", "winograd"):
            algorithm = get_algorithm(name)
            cost = count_matmul_circuit(4, bit_width=1, algorithm=algorithm, depth_parameter=2)
            built = build_matmul_circuit(4, bit_width=1, algorithm=algorithm, depth_parameter=2)
            assert cost.size == built.circuit.size


class TestSubcubicClaim:
    def test_level_selection_beats_single_jump_at_equal_depth(self):
        """Finite-size glimpse of the Section 4 claim: with the same depth
        budget, the Lemma 4.3 level selection needs fewer gates than the
        single-jump flattening it replaces (the asymptotic gap is the subject
        of experiments E5/E7/E8; see EXPERIMENTS.md for the large-N story)."""
        from repro.core.gate_count_model import count_trace_circuit
        from repro.core.schedule import direct_schedule
        from repro.fastmm.strassen import strassen_2x2

        algorithm = strassen_2x2()
        selected = count_trace_circuit(8, bit_width=1, depth_parameter=3)
        single_jump = count_trace_circuit(8, bit_width=1, schedule=direct_schedule(algorithm, 8))
        assert selected.size < single_jump.size
        assert selected.depth >= single_jump.depth  # the price is depth
