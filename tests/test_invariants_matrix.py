"""docs/INVARIANTS.md is load-bearing: its test references must stay real.

The invariant matrix names enforcing tests as ``tests/<file>.py::<name>``.
This module parses the document and fails if a referenced file is missing
or a referenced test function no longer appears in that file — so renaming
or deleting an enforcing test forces a deliberate doc update instead of
silently orphaning an invariant.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC = REPO_ROOT / "docs" / "INVARIANTS.md"

_REFERENCE = re.compile(r"(tests/[\w./]+\.py)::(\w+)")


def _references():
    text = DOC.read_text(encoding="utf-8")
    refs = sorted(set(_REFERENCE.findall(text)))
    assert refs, "docs/INVARIANTS.md contains no test references at all"
    return refs


def test_doc_exists():
    assert DOC.is_file(), "docs/INVARIANTS.md is missing"


@pytest.mark.parametrize("path,test_name", _references())
def test_reference_points_at_a_real_test(path, test_name):
    target = REPO_ROOT / path
    assert target.is_file(), f"INVARIANTS.md references missing file {path}"
    source = target.read_text(encoding="utf-8")
    assert re.search(rf"def {re.escape(test_name)}\b", source), (
        f"INVARIANTS.md references {path}::{test_name}, "
        f"but no such test is defined in {path}"
    )


def test_every_named_invariant_lists_at_least_one_test():
    text = DOC.read_text(encoding="utf-8")
    sections = re.split(r"^### ", text, flags=re.MULTILINE)[1:]
    names = [section.splitlines()[0] for section in sections]
    assert len(names) >= 6, f"expected >= 6 invariants, found {names}"
    for name, section in zip(names, sections):
        assert _REFERENCE.search(section), (
            f"invariant {name!r} lists no enforcing tests"
        )
