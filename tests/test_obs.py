"""Tests for the telemetry subsystem (``repro.obs``).

Covers the instrument primitives (counter / gauge / histogram with label
series), span timing, the drain/merge delta protocol the evaluation service
piggybacks on result messages, percentile edge cases, both exporters, and
the null-registry fast path that keeps disabled telemetry allocation-free.
"""

import json
import pickle
import threading

import pytest

from repro import obs
from repro._version import __version__
from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        c = registry.counter("jobs")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("jobs").inc(-1)

    def test_same_name_same_labels_is_same_instrument(self, registry):
        assert registry.counter("x", a="1") is registry.counter("x", a="1")
        assert registry.counter("x", a="1") is not registry.counter("x", a="2")

    def test_label_order_does_not_matter(self, registry):
        assert registry.counter("x", a="1", b="2") is registry.counter("x", b="2", a="1")


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth")
        g.set(7)
        g.inc(2)
        g.dec(4)
        assert g.value == 5

    def test_gauge_can_go_negative(self, registry):
        g = registry.gauge("delta")
        g.dec(3)
        assert g.value == -3


class TestHistogram:
    def test_count_total_mean(self, registry):
        h = registry.histogram("lat")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == pytest.approx(6.0)
        assert h.mean == pytest.approx(2.0)

    def test_percentile_empty_is_none(self, registry):
        h = registry.histogram("lat")
        assert h.percentile(50) is None
        assert h.mean is None

    def test_percentile_single_sample_is_itself(self, registry):
        h = registry.histogram("lat")
        h.observe(0.25)
        for q in (0, 50, 99, 100):
            assert h.percentile(q) == pytest.approx(0.25)

    def test_percentile_interpolates(self, registry):
        h = registry.histogram("lat")
        for v in (0.0, 1.0):
            h.observe(v)
        assert h.percentile(50) == pytest.approx(0.5)
        assert h.percentile(0) == pytest.approx(0.0)
        assert h.percentile(100) == pytest.approx(1.0)

    def test_percentile_rejects_out_of_range(self, registry):
        h = registry.histogram("lat")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(150)
        with pytest.raises(ValueError):
            h.percentile(-1)

    def test_percentiles_monotone_on_many_samples(self, registry):
        h = registry.histogram("lat")
        for i in range(100):
            h.observe(i / 100.0)
        p50, p90, p99 = h.percentile(50), h.percentile(90), h.percentile(99)
        assert p50 <= p90 <= p99
        assert p50 == pytest.approx(0.495, abs=0.02)

    def test_sample_ring_bounds_memory(self, registry):
        from repro.obs.metrics import _SAMPLE_RING

        h = registry.histogram("lat")
        for i in range(_SAMPLE_RING + 500):
            h.observe(float(i))
        # Count keeps the true total; the ring holds only the newest window.
        assert h.count == _SAMPLE_RING + 500
        assert h.percentile(0) >= 0.0  # still answerable


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------


class TestSpan:
    def test_span_records_into_histogram(self, registry):
        with registry.span("work", phase="a"):
            pass
        h = registry.histogram("work", phase="a")
        assert h.count == 1
        assert h.total >= 0.0

    def test_span_records_on_exception(self, registry):
        with pytest.raises(RuntimeError):
            with registry.span("work"):
                raise RuntimeError("boom")
        assert registry.histogram("work").count == 1

    def test_span_as_decorator(self, registry):
        @registry.span("decorated")
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        assert add.__name__ == "add"
        assert registry.histogram("decorated").count == 1


# ---------------------------------------------------------------------------
# Drain / merge delta protocol
# ---------------------------------------------------------------------------


class TestDrainMerge:
    def test_drain_returns_and_resets(self, registry):
        registry.counter("tasks").inc(3)
        registry.histogram("lat").observe(0.5)
        delta = registry.drain()
        assert ("tasks", (), 3) in delta["counters"]
        assert registry.counter("tasks").value == 0
        assert registry.histogram("lat").count == 0
        # A second drain is empty: nothing double-reports.
        again = registry.drain()
        assert not again["counters"] and not again["histograms"]

    def test_delta_is_picklable(self, registry):
        registry.counter("tasks", kind="run").inc()
        registry.histogram("lat").observe(0.1)
        delta = registry.drain()
        assert pickle.loads(pickle.dumps(delta)) == delta

    def test_merge_applies_extra_labels(self, registry):
        worker = MetricsRegistry()
        worker.counter("tasks").inc(2)
        worker.histogram("lat").observe(0.25)
        registry.merge(worker.drain(), extra_labels={"worker_id": "3"})
        assert registry.counter("tasks", worker_id="3").value == 2
        h = registry.histogram("lat", worker_id="3")
        assert h.count == 1
        assert h.total == pytest.approx(0.25)

    def test_merge_is_additive_and_monotone(self, registry):
        worker = MetricsRegistry()
        totals = 0
        for round_ in range(5):
            worker.counter("tasks").inc(round_ + 1)
            registry.merge(worker.drain(), extra_labels={"worker_id": "0"})
            totals += round_ + 1
            assert registry.counter("tasks", worker_id="0").value == totals

    def test_merge_none_delta_is_noop(self, registry):
        registry.merge(None)
        assert registry.snapshot()["counters"] == {}

    def test_merge_histogram_preserves_percentiles(self, registry):
        worker = MetricsRegistry()
        for v in (0.1, 0.2, 0.3):
            worker.histogram("lat").observe(v)
        registry.merge(worker.drain())
        h = registry.histogram("lat")
        assert h.count == 3
        assert h.percentile(100) == pytest.approx(0.3)


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


class TestExporters:
    def test_snapshot_shape(self, registry):
        registry.counter("jobs", backend="sparse").inc(2)
        registry.gauge("depth").set(1)
        registry.histogram("lat").observe(0.5)
        snap = registry.snapshot()
        assert snap["version"] == __version__
        assert snap["telemetry"] is True
        assert snap["counters"]["jobs{backend=sparse}"] == 2
        assert snap["gauges"]["depth"] == 1
        hist = snap["histograms"]["lat"]
        for key in ("count", "sum", "min", "max", "mean", "p50", "p90", "p99"):
            assert key in hist
        assert hist["count"] == 1
        # Everything must be JSON-serializable as-is.
        json.dumps(snap)

    def test_render_prometheus_text(self, registry):
        registry.counter("cache.hits", backend="dense").inc(4)
        registry.gauge("queue.depth").set(2)
        registry.histogram("task_s", buckets=(0.1, 1.0)).observe(0.05)
        text = registry.render()
        assert f'repro_build_info{{version="{__version__}"}} 1' in text
        assert 'repro_cache_hits_total{backend="dense"} 4' in text
        assert "# TYPE repro_cache_hits_total counter" in text
        assert "repro_queue_depth 2" in text
        assert 'repro_task_s_bucket{le="0.1"} 1' in text
        assert 'repro_task_s_bucket{le="+Inf"} 1' in text
        assert "repro_task_s_count 1" in text

    def test_render_bucket_counts_are_cumulative(self, registry):
        h = registry.histogram("t", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = registry.render()
        assert 'repro_t_bucket{le="0.1"} 1' in text
        assert 'repro_t_bucket{le="1.0"} 2' in text
        assert 'repro_t_bucket{le="10.0"} 3' in text
        assert 'repro_t_bucket{le="+Inf"} 3' in text


# ---------------------------------------------------------------------------
# Null registry / process-global lifecycle
# ---------------------------------------------------------------------------


class TestNullRegistry:
    def test_disabled_and_shared_singletons(self):
        null = NullRegistry()
        assert null.enabled is False
        # No per-call allocation: every lookup returns the same no-op object.
        assert null.counter("a") is null.counter("b", x="y")
        assert null.span("a") is null.span("b")
        assert null.histogram("a") is null.histogram("b")
        assert null.gauge("a") is null.gauge("b")

    def test_null_instruments_are_inert(self):
        null = NullRegistry()
        null.counter("c").inc(5)
        null.gauge("g").set(3)
        null.histogram("h").observe(1.0)
        with null.span("s"):
            pass
        snap = null.snapshot()
        assert snap["telemetry"] is False
        assert snap["counters"] == {}

    def test_null_span_decorator_passthrough(self):
        null = NullRegistry()

        @null.span("s")
        def f(x):
            return x * 2

        assert f(21) == 42


class TestLifecycle:
    def test_default_is_null(self):
        assert get_registry().enabled is False

    def test_enable_disable_roundtrip(self):
        try:
            reg = obs.enable()
            assert get_registry() is reg
            assert reg.enabled
            # Idempotent: a second enable keeps the same registry.
            assert obs.enable() is reg
            reg.counter("x").inc()
            fresh = obs.enable(reset=True)
            assert fresh is not reg
            assert fresh.counter("x").value == 0
        finally:
            obs.disable()
        assert get_registry().enabled is False

    def test_set_registry_none_restores_null(self):
        reg = MetricsRegistry()
        set_registry(reg)
        try:
            assert get_registry() is reg
        finally:
            set_registry(None)
        assert get_registry().enabled is False

    def test_enable_telemetry_alias(self):
        assert obs.enable_telemetry is obs.enable


# ---------------------------------------------------------------------------
# Concurrency
# ---------------------------------------------------------------------------


class TestThreadSafety:
    def test_concurrent_increments_do_not_lose_updates(self, registry):
        c = registry.counter("n")
        n_threads, per_thread = 8, 2000

        def work():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * per_thread

    def test_drain_under_concurrent_observes_conserves_total(self, registry):
        """Everything observed lands in exactly one drain — none lost, none twice."""
        c = registry.counter("n")
        stop = threading.Event()
        drained = []

        def producer():
            for _ in range(5000):
                c.inc()
            stop.set()

        def drainer():
            while not stop.is_set():
                drained.append(registry.drain())
            drained.append(registry.drain())

        threads = [threading.Thread(target=producer), threading.Thread(target=drainer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(
            value
            for delta in drained
            for (name, labels, value) in delta["counters"]
            if name == "n"
        )
        total += c.value  # anything observed after the final drain
        assert total == 5000


def test_default_buckets_are_sorted_and_positive():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
    assert all(b > 0 for b in DEFAULT_BUCKETS)
