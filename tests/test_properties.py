"""Cross-cutting property-based tests (hypothesis).

These complement the per-module tests with randomized invariants that tie
several subsystems together:

* optimizer passes never change the input/output behaviour of a circuit,
* serialization is a faithful round-trip for arbitrary circuits,
* the counting builder always agrees with the real builder,
* schedules always start at 0, strictly increase and end at the leaf level,
* the sparsity identity sum_j c'_j = s_C holds for arbitrary composed
  algorithms,
* the recursive fast multiplication agrees with numpy for random algorithms
  from the catalog and random integer matrices.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.circuits.builder import CircuitBuilder
from repro.circuits.counting import CountingBuilder
from repro.circuits.optimize import deduplicate_gates, eliminate_dead_gates
from repro.circuits.serialize import circuit_from_dict, circuit_to_dict
from repro.circuits.simulator import CompiledCircuit
from repro.core.schedule import constant_depth_schedule, loglog_schedule
from repro.fastmm.catalog import available_algorithms, get_algorithm
from repro.fastmm.compose import compose
from repro.fastmm.recursive import fast_matmul
from repro.fastmm.sparsity import sparsity_parameters
from repro.util.intmath import ilog


# --------------------------------------------------------------------------- #
# Random circuit generation shared by several properties.
# --------------------------------------------------------------------------- #


def draw_random_circuit(data, max_inputs=4, max_gates=10):
    n_inputs = data.draw(st.integers(min_value=1, max_value=max_inputs), label="n_inputs")
    n_gates = data.draw(st.integers(min_value=1, max_value=max_gates), label="n_gates")
    builder = CircuitBuilder()
    builder.allocate_inputs(n_inputs)
    for g in range(n_gates):
        available = n_inputs + g
        fan_in = data.draw(st.integers(min_value=0, max_value=min(3, available)), label="fan_in")
        sources = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=available - 1),
                min_size=fan_in,
                max_size=fan_in,
                unique=True,
            ),
            label="sources",
        )
        weights = data.draw(
            st.lists(st.integers(min_value=-4, max_value=4), min_size=fan_in, max_size=fan_in),
            label="weights",
        )
        threshold = data.draw(st.integers(min_value=-6, max_value=6), label="threshold")
        builder.add_gate(sources, weights, threshold)
    circuit = builder.build()
    n_outputs = data.draw(st.integers(min_value=1, max_value=circuit.n_nodes), label="n_outputs")
    outputs = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=circuit.n_nodes - 1),
            min_size=n_outputs,
            max_size=n_outputs,
            unique=True,
        ),
        label="outputs",
    )
    circuit.set_outputs(outputs)
    return circuit


def all_assignments(n_inputs):
    for value in range(2 ** n_inputs):
        yield np.array([(value >> i) & 1 for i in range(n_inputs)])


class TestOptimizerProperties:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_deduplication_preserves_all_outputs(self, data):
        circuit = draw_random_circuit(data)
        optimized, _ = deduplicate_gates(circuit)
        assert optimized.size <= circuit.size
        original = CompiledCircuit(circuit)
        reduced = CompiledCircuit(optimized)
        for assignment in all_assignments(circuit.n_inputs):
            assert (
                original.evaluate(assignment).outputs == reduced.evaluate(assignment).outputs
            ).all()

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_dead_gate_elimination_preserves_all_outputs(self, data):
        circuit = draw_random_circuit(data)
        pruned, _ = eliminate_dead_gates(circuit)
        assert pruned.size <= circuit.size
        original = CompiledCircuit(circuit)
        reduced = CompiledCircuit(pruned)
        for assignment in all_assignments(circuit.n_inputs):
            assert (
                original.evaluate(assignment).outputs == reduced.evaluate(assignment).outputs
            ).all()


class TestSerializationProperties:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_roundtrip_is_faithful(self, data):
        circuit = draw_random_circuit(data)
        restored = circuit_from_dict(circuit_to_dict(circuit))
        assert restored.n_inputs == circuit.n_inputs
        assert restored.size == circuit.size
        assert restored.outputs == circuit.outputs
        original = CompiledCircuit(circuit)
        copy = CompiledCircuit(restored)
        for assignment in all_assignments(circuit.n_inputs):
            assert (
                original.evaluate(assignment).node_values == copy.evaluate(assignment).node_values
            ).all()


class TestCountingBuilderProperties:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_counting_matches_real_builder_on_random_programs(self, data):
        n_inputs = data.draw(st.integers(min_value=1, max_value=5))
        steps = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=3),  # fan-in
                    st.integers(min_value=-3, max_value=3),  # threshold
                ),
                min_size=1,
                max_size=15,
            )
        )
        real = CircuitBuilder()
        counting = CountingBuilder()
        for builder in (real, counting):
            inputs = builder.allocate_inputs(n_inputs)
            nodes = list(inputs)
            for fan_in, threshold in steps:
                fan_in = min(fan_in, len(nodes))
                sources = nodes[-fan_in:] if fan_in else []
                node = builder.add_gate(sources, [1] * fan_in, threshold, tag="t")
                nodes.append(node)
        circuit = real.build()
        assert counting.size == circuit.size
        assert counting.depth == circuit.depth
        assert counting.edges == circuit.edges
        assert counting.max_fan_in == circuit.max_fan_in


class TestScheduleProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        exponent=st.integers(min_value=1, max_value=24),
        d=st.integers(min_value=1, max_value=8),
        name=st.sampled_from(["strassen", "winograd", "strassen-squared"]),
    )
    def test_constant_depth_schedule_invariants(self, exponent, d, name):
        algorithm = get_algorithm(name)
        n = algorithm.t ** max(1, exponent // (1 if algorithm.t == 2 else 2))
        leaf = ilog(n, algorithm.t)
        schedule = constant_depth_schedule(algorithm, n, d)
        assert schedule.levels[0] == 0
        assert schedule.leaf_level == leaf
        assert all(b > a for a, b in zip(schedule.levels, schedule.levels[1:]))
        assert schedule.t_steps <= d

    @settings(max_examples=20, deadline=None)
    @given(exponent=st.integers(min_value=1, max_value=24))
    def test_loglog_schedule_invariants(self, exponent):
        algorithm = get_algorithm("strassen")
        schedule = loglog_schedule(algorithm, 2 ** exponent)
        assert schedule.levels[0] == 0
        assert schedule.leaf_level == exponent
        assert all(b > a for a, b in zip(schedule.levels, schedule.levels[1:]))


class TestAlgorithmProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        outer=st.sampled_from(["strassen", "winograd", "naive-2"]),
        inner=st.sampled_from(["strassen", "winograd", "naive-2"]),
    )
    def test_composition_preserves_correctness_and_sparsity_identity(self, outer, inner):
        composed = compose(get_algorithm(outer), get_algorithm(inner))
        assert composed.verify()
        params = sparsity_parameters(composed)
        assert sum(params.c_prime) == params.s_C
        assert params.s_A == sparsity_parameters(get_algorithm(outer)).s_A * sparsity_parameters(
            get_algorithm(inner)
        ).s_A

    @settings(max_examples=15, deadline=None)
    @given(
        name=st.sampled_from(["strassen", "winograd", "naive-2", "strassen-squared"]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_recursive_fast_matmul_matches_numpy(self, name, seed):
        algorithm = get_algorithm(name)
        rng = np.random.default_rng(seed)
        n = algorithm.t ** 2
        a = rng.integers(-6, 7, (n, n))
        b = rng.integers(-6, 7, (n, n))
        assert (fast_matmul(a, b, algorithm) == a.astype(object) @ b.astype(object)).all()
