"""Concurrency and lifecycle tests for the persistent evaluation service.

The invariant underneath everything: whatever the sharding, transport
(pickle vs shared memory), interleaving, eviction, or worker crashes, the
service returns node values bit-identical to serial evaluation — every task
is ``program.run`` over an independent column range.
"""

import numpy as np
import pytest

from repro.circuits.builder import CircuitBuilder
from repro.core.matmul_circuit import build_matmul_circuit
from repro.core.trace_circuit import build_trace_circuit
from repro.engine import (
    Engine,
    EngineConfig,
    EvaluationService,
    ServiceClosed,
    as_completed,
    chain_future,
)
from repro.triangles import build_triangle_query

BACKENDS = ("sparse", "dense", "exact")


class ExplodingProgram:
    """Module-level (hence picklable) program that fails inside the worker."""

    backend_name = "boom"
    n_inputs = 2
    n_nodes = 3
    outputs = [2]

    def run(self, inputs):
        raise ValueError("deliberate failure")


class WorkerKillerProgram:
    """A program whose evaluation takes its worker process down with it."""

    backend_name = "fatal"
    n_inputs = 2
    n_nodes = 3
    outputs = [2]

    def run(self, inputs):
        import os

        os._exit(17)


class UnpicklableProgram:
    """A program whose install message cannot cross the process boundary."""

    backend_name = "stuck"
    n_inputs = 2
    n_nodes = 3
    outputs = [2]

    def __init__(self):
        self.blocker = lambda: None  # lambdas cannot be pickled

    def run(self, inputs):  # pragma: no cover - never reaches a worker
        return np.zeros((self.n_nodes, inputs.shape[1]), dtype=np.int8)


def parity_circuit(n_bits, name="parity"):
    builder = CircuitBuilder(name=f"{name}{n_bits}")
    inputs = builder.allocate_inputs(n_bits)
    at_least = [builder.add_gate(inputs, [1] * n_bits, k) for k in range(1, n_bits + 1)]
    weights = [1 if k % 2 == 1 else -1 for k in range(1, n_bits + 1)]
    out = builder.add_gate(at_least, weights, 1)
    builder.set_outputs([out], ["parity"])
    return builder.build()


def slow_reference(circuit, batch):
    return np.stack(
        [circuit.evaluate_slow(list(batch[:, j])) for j in range(batch.shape[1])],
        axis=1,
    )


def service_config(**overrides):
    base = dict(max_workers=2, chunk_size=4, parallel_threshold=1)
    base.update(overrides)
    return EngineConfig(**base)


@pytest.fixture
def parity6():
    return parity_circuit(6)


@pytest.fixture
def compiled(parity6):
    return Engine().compile(parity6, backend="sparse")


class TestSubmission:
    def test_submit_matches_serial(self, compiled, rng):
        batch = rng.integers(0, 2, size=(6, 23))
        expected = compiled.run(batch)
        with EvaluationService(service_config()) as service:
            assert (service.submit(compiled, batch).result() == expected).all()
            # Steady state: same program again, no new installs.
            before = service.stats().installs
            assert (service.evaluate(compiled, batch) == expected).all()
            assert service.stats().installs == before

    def test_install_once_per_worker(self, compiled, rng):
        batch = rng.integers(0, 2, size=(6, 16))
        with EvaluationService(service_config()) as service:
            for _ in range(5):
                service.evaluate(compiled, batch)
            stats = service.stats()
            assert stats.jobs == 5
            assert stats.installs <= stats.workers

    def test_one_dim_input_promoted(self, compiled):
        vector = np.array([1, 0, 1, 1, 0, 0])
        with EvaluationService(service_config()) as service:
            result = service.evaluate(compiled, vector)
        assert result.shape == (compiled.n_nodes, 1)
        assert (result[:, 0] == compiled.run(vector[:, None])[:, 0]).all()

    def test_zero_width_batch(self, compiled):
        with EvaluationService(service_config()) as service:
            result = service.evaluate(compiled, np.zeros((6, 0), dtype=np.int64))
        assert result.shape == (compiled.n_nodes, 0)
        assert result.dtype == np.int8

    def test_map_and_as_completed(self, compiled, rng):
        batches = [rng.integers(0, 2, size=(6, 9)) for _ in range(4)]
        with EvaluationService(service_config()) as service:
            for batch, result in zip(batches, service.map(compiled, batches)):
                assert (result == compiled.run(batch)).all()
            futures = {
                service.submit(compiled, batch): batch for batch in batches
            }
            for future in as_completed(futures):
                assert (future.result() == compiled.run(futures[future])).all()

    def test_interleaved_circuits_share_one_pool(self, rng):
        engine = Engine()
        circuits = [parity_circuit(5), parity_circuit(7, name="q")]
        programs = [engine.compile(c, backend="sparse") for c in circuits]
        batches = [rng.integers(0, 2, size=(c.n_inputs, 13)) for c in circuits]
        with EvaluationService(service_config()) as service:
            futures = []
            for round_index in range(4):
                for program, batch in zip(programs, batches):
                    futures.append((program, batch, service.submit(program, batch)))
            for program, batch, future in futures:
                assert (future.result() == program.run(batch)).all()
            stats = service.stats()
            assert stats.jobs == 8
            # Two distinct programs, each installed at most once per worker.
            assert stats.installs <= stats.workers * 2

    def test_bit_equality_vs_evaluate_slow_all_backends(self, parity6, rng):
        batch = rng.integers(0, 2, size=(6, 19))
        expected = slow_reference(parity6, batch)
        engine = Engine()
        with EvaluationService(service_config()) as service:
            for backend in BACKENDS:
                program = engine.compile(parity6, backend=backend)
                node_values = service.evaluate(
                    program, batch, key=(parity6.structural_hash(), backend)
                )
                assert (node_values == expected).all(), backend


class TestSharedMemory:
    def test_shared_memory_path_bit_identical(self, compiled, rng):
        batch = rng.integers(0, 2, size=(6, 40))
        config = service_config(shared_memory_min_bytes=1)
        with EvaluationService(config) as service:
            result = service.evaluate(compiled, batch)
            assert service.stats().shm_jobs == 1
        assert (result == compiled.run(batch)).all()

    def test_pickle_fallback_below_threshold(self, compiled, rng):
        batch = rng.integers(0, 2, size=(6, 40))
        config = service_config(shared_memory_min_bytes=1 << 30)
        with EvaluationService(config) as service:
            result = service.evaluate(compiled, batch)
            assert service.stats().shm_jobs == 0
        assert (result == compiled.run(batch)).all()


class TestResilience:
    def test_eviction_then_reinstall(self, rng):
        engine = Engine()
        circuits = [parity_circuit(5), parity_circuit(6, name="other")]
        programs = [engine.compile(c, backend="sparse") for c in circuits]
        batches = [rng.integers(0, 2, size=(c.n_inputs, 12)) for c in circuits]
        config = service_config(service_store_size=1)
        with EvaluationService(config) as service:
            for _ in range(3):
                for program, batch in zip(programs, batches):
                    assert (service.evaluate(program, batch) == program.run(batch)).all()
            # A store of one forces alternating installs: strictly more than
            # the install-once floor of workers * programs.
            stats = service.stats()
            assert stats.installs > stats.workers * len(programs)

    def test_missing_program_triggers_reinstall(self, compiled, rng):
        batch = rng.integers(0, 2, size=(6, 12))
        with EvaluationService(service_config()) as service:
            key = ("drifted-hash", "sparse")
            # Simulate mirror drift: claim every worker already holds the key.
            for worker in service._workers:
                worker.store[key] = True
            assert (service.evaluate(compiled, batch, key=key) == compiled.run(batch)).all()
            assert service.stats().reinstalls >= 1

    def test_worker_death_respawns_and_reinstalls(self, compiled, rng):
        batch = rng.integers(0, 2, size=(6, 12))
        expected = compiled.run(batch)
        with EvaluationService(service_config()) as service:
            assert (service.evaluate(compiled, batch) == expected).all()
            installs = service.stats().installs
            for worker in list(service._workers):
                worker.process.kill()
                worker.process.join(timeout=10)
            assert (service.evaluate(compiled, batch) == expected).all()
            stats = service.stats()
            assert stats.worker_restarts >= 2
            # Fresh processes have empty stores: the program ships again.
            assert stats.installs > installs

    def test_worker_error_propagates(self, rng):
        batch = rng.integers(0, 2, size=(2, 8))
        with EvaluationService(service_config()) as service:
            future = service.submit(ExplodingProgram(), batch)
            with pytest.raises(RuntimeError, match="deliberate failure"):
                future.result(timeout=30)

    def test_worker_killing_task_fails_after_bounded_respawns(self, rng):
        # A task that deterministically crashes its worker must exhaust its
        # attempt budget and fail the job — not respawn workers forever.
        batch = rng.integers(0, 2, size=(2, 6))
        with EvaluationService(service_config()) as service:
            future = service.submit(WorkerKillerProgram(), batch)
            with pytest.raises(RuntimeError, match="worker deaths"):
                future.result(timeout=120)
            assert service.stats().worker_restarts >= 1
            # The pool stays usable for healthy programs afterwards.
            program = Engine().compile(parity_circuit(4), backend="sparse")
            healthy = rng.integers(0, 2, size=(4, 10))
            assert (service.evaluate(program, healthy) == program.run(healthy)).all()

    def test_unpicklable_program_fails_after_bounded_retries(self, rng):
        # Install pickling fails asynchronously in the queue feeder thread;
        # the worker keeps reporting the program missing, and the service
        # must fail the job after a bounded number of reinstall attempts
        # instead of cycling forever.
        batch = rng.integers(0, 2, size=(2, 8))
        with EvaluationService(service_config()) as service:
            future = service.submit(UnpicklableProgram(), batch)
            with pytest.raises(RuntimeError, match="could not install"):
                future.result(timeout=60)


class TestLifecycle:
    def test_close_is_idempotent_and_rejects_new_work(self, compiled, rng):
        batch = rng.integers(0, 2, size=(6, 8))
        service = EvaluationService(service_config())
        assert (service.evaluate(compiled, batch) == compiled.run(batch)).all()
        service.close()
        service.close()
        assert service.closed
        with pytest.raises(ServiceClosed):
            service.submit(compiled, batch)

    def test_close_stops_workers(self, compiled):
        service = EvaluationService(service_config())
        processes = [worker.process for worker in service._workers]
        service.close()
        assert all(not process.is_alive() for process in processes)

    def test_context_manager_closes(self, compiled):
        with EvaluationService(service_config()) as service:
            pass
        assert service.closed

    def test_chain_future_propagates_errors(self):
        from concurrent.futures import CancelledError, Future

        inner = Future()
        outer = chain_future(inner, lambda value: value + 1)
        inner.set_result(1)
        assert outer.result(timeout=5) == 2

        inner = Future()
        outer = chain_future(inner, lambda value: value + 1)
        inner.set_exception(ValueError("inner failed"))
        with pytest.raises(ValueError, match="inner failed"):
            outer.result(timeout=5)

        inner = Future()
        outer = chain_future(inner, lambda value: 1 / 0)
        inner.set_result(0)
        with pytest.raises(ZeroDivisionError):
            outer.result(timeout=5)

        # A cancelled inner future must resolve the outer one, not strand it.
        inner = Future()
        outer = chain_future(inner, lambda value: value)
        assert inner.cancel()
        with pytest.raises(CancelledError):
            outer.result(timeout=5)

    def test_chain_future_with_executor(self):
        import threading
        from concurrent.futures import Future

        from repro.engine import transform_executor

        inner = Future()
        seen = {}

        def transform(value):
            seen["thread"] = threading.current_thread().name
            return value * 2

        outer = chain_future(inner, transform, executor=transform_executor())
        inner.set_result(21)
        assert outer.result(timeout=10) == 42
        # The transform ran on the shared executor, not the completing thread.
        assert seen["thread"].startswith("service-transform")


class TestEngineRouting:
    def test_parallel_engine_matches_serial(self, parity6, rng):
        batch = rng.integers(0, 2, size=(6, 32))
        serial = Engine().evaluate(parity6, batch)
        with Engine(service_config(parallel_threshold=8)) as engine:
            result = engine.evaluate(parity6, batch)
            assert engine._service is not None  # the resident pool engaged
            again = engine.evaluate(parity6, batch)
        assert (result.node_values == serial.node_values).all()
        assert (result.energy == serial.energy).all()
        assert (again.node_values == serial.node_values).all()

    def test_persistent_pool_off_uses_per_call_pool(self, parity6, rng):
        batch = rng.integers(0, 2, size=(6, 32))
        serial = Engine().evaluate(parity6, batch)
        with Engine(service_config(parallel_threshold=8, persistent_pool=False)) as engine:
            result = engine.evaluate(parity6, batch)
            assert engine._service is None
        assert (result.node_values == serial.node_values).all()

    def test_squeeze_and_zero_width_through_parallel_config(self, parity6, rng):
        with Engine(service_config()) as engine:
            vector = rng.integers(0, 2, size=6)
            single = engine.evaluate(parity6, vector)
            assert single.node_values.ndim == 1
            assert (
                single.node_values == Engine().evaluate(parity6, vector).node_values
            ).all()
            empty = engine.evaluate(parity6, np.zeros((6, 0), dtype=np.int64))
            assert empty.node_values.shape == (parity6.n_nodes, 0)
            assert empty.energy.shape == (0,)

    def test_engine_submit_future(self, parity6, rng):
        batch = rng.integers(0, 2, size=(6, 24))
        serial = Engine().evaluate(parity6, batch)
        with Engine(service_config(parallel_threshold=8)) as engine:
            futures = [engine.submit(parity6, batch) for _ in range(3)]
            for future in futures:
                result = future.result(timeout=60)
                assert (result.node_values == serial.node_values).all()
                assert (result.outputs == serial.outputs).all()
        # Serial engines complete submissions inline.
        future = Engine().submit(parity6, batch)
        assert future.done()
        assert (future.result().node_values == serial.node_values).all()

    def test_spike_trace_through_service(self, parity6, rng):
        batch = rng.integers(0, 2, size=(6, 32))
        serial_trace = Engine().spike_trace(parity6, batch)
        with Engine(service_config(parallel_threshold=8)) as engine:
            trace = engine.spike_trace(parity6, batch)
        assert (trace.energy == serial_trace.energy).all()
        assert (trace.spikes_per_layer == serial_trace.spikes_per_layer).all()

    def test_engine_close_restarts_service_on_demand(self, parity6, rng):
        batch = rng.integers(0, 2, size=(6, 32))
        engine = Engine(service_config(parallel_threshold=8))
        try:
            engine.evaluate(parity6, batch)
            first = engine._service
            assert first is not None
            engine.close()
            assert engine._service is None
            result = engine.evaluate(parity6, batch)
            assert engine._service is not first
            assert (
                result.node_values == Engine().evaluate(parity6, batch).node_values
            ).all()
        finally:
            engine.close()


class TestDriverIntegration:
    def test_trace_submit_batch(self, rng):
        built = build_trace_circuit(2, 3, bit_width=1, depth_parameter=1)
        matrices = [rng.integers(0, 2, size=(2, 2)) for _ in range(6)]
        expected = built.evaluate_batch(matrices)
        future = built.submit_batch(matrices)
        assert (future.result(timeout=60) == expected).all()
        empty = built.submit_batch([])
        assert empty.result(timeout=5).shape == (0,)

    def test_trace_submit_batch_through_service(self, rng):
        with Engine(service_config()) as engine:
            built = build_trace_circuit(
                2, 3, bit_width=1, depth_parameter=1, engine=engine
            )
            matrices = [rng.integers(0, 2, size=(2, 2)) for _ in range(8)]
            decisions = built.submit_batch(matrices).result(timeout=60)
            assert engine._service is not None
        assert decisions.tolist() == [built.reference(m) for m in matrices]

    def test_matmul_evaluate_batch(self, rng):
        built = build_matmul_circuit(2, bit_width=1)
        pairs = [
            (
                rng.integers(-1, 2, size=(2, 2)),
                rng.integers(-1, 2, size=(2, 2)),
            )
            for _ in range(4)
        ]
        products = built.evaluate_batch(pairs)
        for (a, b), product in zip(pairs, products):
            assert (product == built.reference(a, b)).all()
        assert built.evaluate_batch([]) == []

    def test_matmul_submit_batch_through_service(self, rng):
        with Engine(service_config()) as engine:
            built = build_matmul_circuit(2, bit_width=1, engine=engine)
            pairs = [
                (
                    rng.integers(-1, 2, size=(2, 2)),
                    rng.integers(-1, 2, size=(2, 2)),
                )
                for _ in range(5)
            ]
            products = built.submit_batch(pairs).result(timeout=60)
        for (a, b), product in zip(pairs, products):
            assert (product == built.reference(a, b)).all()

    def test_triangle_submit_batch(self, rng):
        query = build_triangle_query(4, tau_triangles=1, depth_parameter=1)
        graphs = []
        for _ in range(4):
            upper = np.triu(rng.integers(0, 2, size=(4, 4)), k=1)
            graphs.append(upper + upper.T)
        answers = query.submit_batch(graphs).result(timeout=60)
        assert answers.tolist() == [query.reference(g) for g in graphs]


@pytest.fixture
def telemetry():
    """Fresh process-global registry for the test, restored to null after."""
    from repro import obs

    registry = obs.enable(reset=True)
    yield registry
    obs.disable()


class TestStatsConsistency:
    def test_stats_atomic_under_concurrent_submit(self, compiled, rng):
        """Hammering stats() during submission never sees a torn update.

        Every job's counters are incremented together under the dispatcher
        lock, and stats() reads under the same lock — so invariants that
        hold after each submit must hold in every observed snapshot, not
        just the final one.
        """
        import threading

        # Wide batches cross shared_memory_min_bytes, so each job bumps
        # jobs AND shm_jobs in one locked block — the torn read this guards
        # against is seeing the second without the first.
        import time

        config = service_config(shared_memory_min_bytes=1)
        batch = rng.integers(0, 2, size=(6, 64))
        n_jobs = 20
        snapshots = []
        stop = threading.Event()
        with EvaluationService(config) as service:

            def hammer():
                # Throttled: an unbounded tight loop starves the dispatcher
                # (and this list) on single-core boxes without adding rigor.
                while not stop.is_set():
                    snapshots.append(service.stats())
                    time.sleep(0.001)

            reader = threading.Thread(target=hammer)
            reader.start()
            try:
                futures = [service.submit(compiled, batch) for _ in range(n_jobs)]
                for future in futures:
                    future.result(timeout=60)
            finally:
                stop.set()
                reader.join(timeout=10)
            snapshots.append(service.stats())
        assert snapshots
        previous_jobs = 0
        for stats in snapshots:
            assert 0 <= stats.shm_jobs <= stats.jobs <= n_jobs
            assert stats.tasks >= 0 and stats.installs >= 0
            # jobs is monotone across successive reads from one thread.
            assert stats.jobs >= previous_jobs
            previous_jobs = stats.jobs
        assert snapshots[-1].jobs == n_jobs
        assert snapshots[-1].shm_jobs == n_jobs


class TestMetricPiggyback:
    def test_worker_tasks_sum_to_dispatched_chunks(self, compiled, rng, telemetry):
        """Without failures, merged worker deltas account for every chunk."""
        batch = rng.integers(0, 2, size=(6, 23))
        with EvaluationService(service_config()) as service:
            for _ in range(4):
                service.evaluate(compiled, batch)
            stats = service.stats()
            # Every future resolved, so every result message (and its delta)
            # has been merged: per-worker totals equal the dispatch count.
            assert telemetry.total("worker.tasks") == stats.tasks
            assert telemetry.total("worker.installs") == stats.installs
            series = telemetry.series("worker.tasks")
            assert all("worker_id=" in key for key in series)
            assert sum(series.values()) == stats.tasks

    def test_counts_monotone_across_kill_and_respawn(self, compiled, rng, telemetry):
        batch = rng.integers(0, 2, size=(6, 12))
        with EvaluationService(service_config()) as service:
            service.evaluate(compiled, batch)
            tasks_before = telemetry.total("worker.tasks")
            installs_before = telemetry.total("worker.installs")
            assert tasks_before > 0
            for worker in list(service._workers):
                worker.process.kill()
                worker.process.join(timeout=10)
            service.evaluate(compiled, batch)
            # Respawned workers start fresh registries: parent totals only
            # grow (a dead worker loses at most its unflushed delta, never
            # re-reports what was already merged).
            assert telemetry.total("worker.tasks") >= tasks_before
            assert telemetry.total("worker.installs") > installs_before
            assert telemetry.total("worker.tasks") == service.stats().tasks

    def test_no_double_count_on_redispatch(self, compiled, rng, telemetry):
        """A task re-dispatched after a 'missing program' runs (and counts) once."""
        batch = rng.integers(0, 2, size=(6, 12))
        with EvaluationService(service_config()) as service:
            key = ("drifted-hash", "sparse")
            for worker in service._workers:
                worker.store[key] = True  # mirror drift: worker lacks the program
            expected = compiled.run(batch)
            assert (service.evaluate(compiled, batch, key=key) == expected).all()
            stats = service.stats()
            assert stats.reinstalls >= 1
            # The missing attempt never ran the program, so executed-task
            # totals stay strictly below dispatches and match chunk count.
            n_chunks = -(-batch.shape[1] // service_config().chunk_size)
            assert telemetry.total("worker.tasks") == n_chunks
            assert stats.tasks > n_chunks  # the re-dispatches

    def test_queue_and_latency_histograms_populated(self, compiled, rng, telemetry):
        batch = rng.integers(0, 2, size=(6, 16))
        with EvaluationService(service_config()) as service:
            service.evaluate(compiled, batch)
        snap = telemetry.snapshot()
        histograms = snap["histograms"]
        assert any(key.startswith("worker.task_s") for key in histograms)
        assert any(key.startswith("worker.queue_wait_s") for key in histograms)
        assert any(key.startswith("service.job_s") for key in histograms)
        for key, summary in histograms.items():
            if key.startswith(("worker.", "service.")):
                assert summary["count"] >= 1
                assert summary["p50"] is not None

    def test_transport_bytes_recorded(self, compiled, rng, telemetry):
        shm_config = service_config(shared_memory_min_bytes=1)
        batch = rng.integers(0, 2, size=(6, 32))
        with EvaluationService(shm_config) as service:
            service.evaluate(compiled, batch)
            assert service.stats().shm_jobs >= 1
        assert telemetry.total("worker.shm_bytes") > 0
        assert telemetry.total("worker.pickle_bytes") == 0

    def test_disabled_telemetry_still_has_stats(self, compiled, rng):
        from repro.obs import get_registry

        assert not get_registry().enabled
        batch = rng.integers(0, 2, size=(6, 12))
        with EvaluationService(service_config()) as service:
            service.evaluate(compiled, batch)
            stats = service.stats()
            assert stats.jobs == 1
            assert stats.tasks >= 1
        # ...without leaking anything into the process-global registry.
        assert get_registry().snapshot()["counters"] == {}


class TestDiskWarmStart:
    """Workers restore published artifacts locally instead of being shipped
    the program over the install queue — including after a crash respawn."""

    @staticmethod
    def _warm_setup(tmp_path):
        adir = str(tmp_path / "artifacts")
        circuit = parity_circuit(6)
        with Engine(
            EngineConfig(backend="sparse", artifact_cache=True, artifact_dir=adir)
        ) as engine:
            program, key = engine.compile_entry(circuit)
        return adir, program, key

    def test_worker_warm_start_from_disk_zero_reinstalls(self, tmp_path, rng):
        adir, program, key = self._warm_setup(tmp_path)
        batch = rng.integers(0, 2, size=(6, 16))
        expected = program.run(batch)
        config = service_config(artifact_cache=True, artifact_dir=adir)
        with EvaluationService(config) as service:
            assert (service.evaluate(program, batch, key=key) == expected).all()
            stats = service.stats()
            # The program never crossed the install queue: every worker
            # that needed it restored the published artifact itself.
            assert stats.installs == 0
            assert stats.disk_skipped_installs >= 1

            # Kill every worker.  Fresh processes have empty stores, but a
            # warm artifact directory: still zero parent-side installs.
            for worker in list(service._workers):
                worker.process.kill()
                worker.process.join(timeout=10)
            assert (service.evaluate(program, batch, key=key) == expected).all()
            stats = service.stats()
            assert stats.worker_restarts >= 2
            assert stats.installs == 0
            assert stats.reinstalls == 0

    def test_missing_artifact_falls_back_to_queue_install(self, tmp_path, rng):
        adir, program, key = self._warm_setup(tmp_path)
        batch = rng.integers(0, 2, size=(6, 12))
        expected = program.run(batch)
        config = service_config(artifact_cache=True, artifact_dir=adir)
        with EvaluationService(config) as service:
            # Warm steady state first, so the parent memoizes the artifact
            # as disk-resident and skips queue installs.
            assert (service.evaluate(program, batch, key=key) == expected).all()
            assert service.stats().installs == 0

            # Now delete the artifact *and* the workers' in-memory copies
            # (a kill empties their stores).  The respawned workers fail the
            # disk restore, report the program missing, and the parent must
            # fall back to a forced queue install instead of skipping
            # forever on its stale disk-resident memo.
            from repro.engine import DiskArtifactStore

            DiskArtifactStore(adir).clear()
            for worker in list(service._workers):
                worker.process.kill()
                worker.process.join(timeout=10)
            assert (service.evaluate(program, batch, key=key) == expected).all()
            assert service.stats().installs >= 1
