"""Short-mode soak runs (see docs/INVARIANTS.md and tests/soak_harness.py).

These are seconds-long versions of the CI soak: enough wall time for every
family to cycle a few times (and, with faults, for kills/retries/fallbacks
to fire), short enough for the regular suite.  ``SOAK_SECONDS`` lengthens
them without code changes.
"""

import numpy as np
import pytest

from repro.engine.faults import aggressive_plan
from repro.engine.soak import SoakReport, default_soak_config, run_soak
from repro.obs import MetricsRegistry, counter_regressions

from soak_harness import soak_seconds


class TestCounterRegressions:
    def test_clean_growth_is_empty(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        before = registry.snapshot()
        counter.inc()
        after = registry.snapshot()
        assert counter_regressions(before, after) == []

    def test_shrunk_counter_reported(self):
        a = MetricsRegistry()
        a.counter("c").inc(5)
        before = a.snapshot()
        b = MetricsRegistry()
        b.counter("c").inc(2)
        after = b.snapshot()
        findings = counter_regressions(before, after)
        assert findings and "c" in findings[0]

    def test_vanished_series_reported(self):
        a = MetricsRegistry()
        a.counter("gone").inc()
        before = a.snapshot()
        after = MetricsRegistry().snapshot()
        findings = counter_regressions(before, after)
        assert findings and "gone" in findings[0]


class TestSoakReport:
    def test_assert_ok_lists_every_problem(self):
        report = SoakReport(seconds=1.0, drift=2, leaked_shm=["psm_dead"])
        with pytest.raises(AssertionError) as excinfo:
            report.assert_ok()
        message = str(excinfo.value)
        assert "non-bit-identical" in message
        assert "psm_dead" in message

    def test_deadline_failures_allowed_only_with_job_timeout(self):
        failing = SoakReport(
            seconds=1.0, jobs_ok=1, failures={"DeadlineExceeded": 3}
        )
        assert failing.problems()
        allowed = SoakReport(
            seconds=1.0, jobs_ok=1, failures={"DeadlineExceeded": 3}, job_timeout=0.5
        )
        assert allowed.problems() == []

    def test_rejects_non_positive_seconds(self):
        with pytest.raises(ValueError, match="seconds"):
            run_soak(0)


class TestShortSoaks:
    def test_clean_soak(self):
        report = run_soak(soak_seconds(default=1.5), seed=1)
        report.assert_ok()
        assert report.jobs_ok > 0
        assert len(report.families) == 5
        assert report.final_stats["jobs"] >= report.jobs_ok

    def test_aggressive_soak(self):
        report = run_soak(
            soak_seconds(default=3.0), fault_plan=aggressive_plan(), seed=2
        )
        report.assert_ok()
        stats = report.final_stats
        # The plan must actually have bitten: every recovery family fires.
        assert stats["worker_restarts"] >= 1
        assert stats["retries"] >= 1
        assert stats["protocol_errors"] >= 1
        assert stats["shm_fallbacks"] >= 1

    def test_degradation_soak(self):
        # Constant kills with no respawn budget: the pool retires early in
        # the run and everything still completes serially, bit-identically.
        from repro.engine.faults import FaultPlan

        config = default_soak_config(service_respawn_budget=0)
        report = run_soak(
            soak_seconds(default=1.5),
            config=config,
            fault_plan=FaultPlan(kill_before_task=1),
            seed=3,
        )
        report.assert_ok()
        assert report.final_stats["degraded"] is True
        assert report.final_stats["workers"] == 0
        assert report.final_stats["degraded_jobs"] >= 1
