"""Self-test harness for the engine source lint (``repro.statics.lint``).

Every rule is pinned twice: it must *fire* on its seeded bad fixture under
``tests/fixtures/lint/`` and must stay *silent* on the matching good
fixture — so a rule that silently stops matching (an AST shape drifted, a
registry entry was dropped) fails CI, exactly like a regression test for
runtime code.  The suite also pins the repository-wide contract: linting
``src/repro`` itself reports nothing.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.statics.lint import ALL_CODES, lint_paths, lint_source, main
from repro.statics.registry import GUARDED_CLASSES, POOL_BOUNDARY_CLASSES

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
SRC = Path(__file__).parent.parent / "src" / "repro"

RULE_FIXTURES = {
    "REP001": ("engine/bad_assert.py", "engine/good_assert.py"),
    "REP002": ("bad_shm.py", "good_shm.py"),
    "REP003": ("bad_lock.py", "good_lock.py"),
    "REP004": ("bad_wallclock.py", "good_wallclock.py"),
    "REP005": ("bad_pickle.py", "good_pickle.py"),
    "REP006": ("bad_tempwrite.py", "good_tempwrite.py"),
}


def _lint_fixture(name, select):
    path = FIXTURES / name
    return lint_source(path.read_text(), str(path), select=select)


class TestRulesFireOnFixtures:
    @pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
    def test_rule_fires_on_bad_fixture(self, code):
        bad, _good = RULE_FIXTURES[code]
        findings = _lint_fixture(bad, select=[code])
        assert findings, f"{code} did not fire on {bad}"
        assert all(f.code == code for f in findings)

    @pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
    def test_rule_silent_on_good_fixture(self, code):
        _bad, good = RULE_FIXTURES[code]
        findings = _lint_fixture(good, select=[code])
        assert findings == [], [f.render() for f in findings]

    def test_all_codes_have_fixtures(self):
        assert set(RULE_FIXTURES) == set(ALL_CODES)

    def test_expected_finding_counts(self):
        # Pin the exact hit counts so a rule that *partially* stops
        # matching (fires once instead of thrice) is also caught.
        expected = {
            "REP001": 2,  # two bare asserts
            "REP002": 2,  # dropped binding + discarded call
            "REP003": 3,  # write, racy read, closure escape
            "REP004": 3,  # deadline arith, compare, attribute deadline
            "REP005": 3,  # lambda, lock, open file
            "REP006": 2,  # published-not-cleaned mkstemp, abandoned mkdtemp
        }
        for code, count in expected.items():
            bad, _ = RULE_FIXTURES[code]
            assert len(_lint_fixture(bad, select=[code])) == count, code


class TestRuleDetails:
    def test_rep001_only_applies_under_engine_paths(self):
        source = "def f(x):\n    assert x\n"
        assert lint_source(source, "src/repro/engine/foo.py", select=["REP001"])
        assert not lint_source(source, "src/repro/circuits/foo.py", select=["REP001"])

    def test_rep003_registry_drives_the_rule(self):
        # The same source under an unregistered class name is silent.
        bad = (FIXTURES / "bad_lock.py").read_text()
        renamed = bad.replace("EvaluationService", "SomeOtherService")
        assert lint_source(bad, "x.py", select=["REP003"])
        assert not lint_source(renamed, "x.py", select=["REP003"])

    def test_rep005_registry_drives_the_rule(self):
        bad = (FIXTURES / "bad_pickle.py").read_text()
        renamed = bad.replace("_MatrixProgram", "FreeClass")
        assert lint_source(bad, "x.py", select=["REP005"])
        assert not lint_source(renamed, "x.py", select=["REP005"])

    def test_rep006_registry_drives_the_rule(self):
        # A factory name outside the registry is not a temp artifact.
        bad = (FIXTURES / "bad_tempwrite.py").read_text()
        renamed = bad.replace("tempfile.mkstemp", "tempfile.other").replace(
            "tempfile.mkdtemp", "tempfile.another"
        )
        assert lint_source(bad, "x.py", select=["REP006"])
        assert not lint_source(renamed, "x.py", select=["REP006"])

    def test_rep006_cleanup_without_publication_is_fine(self):
        # Pure-scratch temp use: cleanup alone satisfies the rule.
        source = (
            "import tempfile, shutil\n"
            "def scratch():\n"
            "    d = tempfile.mkdtemp()\n"
            "    shutil.rmtree(d)\n"
        )
        assert not lint_source(source, "x.py", select=["REP006"])

    def test_suppression_comment(self):
        flagged = "import time\ndeadline = time.time() + 5\n"
        assert lint_source(flagged, "x.py", select=["REP004"])
        suppressed = (
            "import time\ndeadline = time.time() + 5  # statics: ignore[REP004]\n"
        )
        assert not lint_source(suppressed, "x.py", select=["REP004"])
        blanket = "import time\ndeadline = time.time() + 5  # statics: ignore\n"
        assert not lint_source(blanket, "x.py", select=["REP004"])
        other_code = (
            "import time\ndeadline = time.time() + 5  # statics: ignore[REP001]\n"
        )
        assert lint_source(other_code, "x.py", select=["REP004"])

    def test_registry_matches_real_classes(self):
        # The registry names must exist in the engine source, or the lock
        # and pickle rules silently guard nothing.
        service_src = (SRC / "engine" / "service.py").read_text()
        for name in GUARDED_CLASSES:
            assert f"class {name}" in service_src, name
        backends_src = (SRC / "engine" / "backends.py").read_text()
        for name in POOL_BOUNDARY_CLASSES:
            assert f"class {name}" in backends_src, name


class TestRepositoryContract:
    def test_src_repro_is_clean(self):
        findings = lint_paths([str(SRC)])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_module_entrypoint(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.statics.lint", str(FIXTURES / "bad_shm.py")],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "REP002" in proc.stdout

    def test_main_exit_codes(self, capsys):
        assert main([str(FIXTURES / "good_shm.py")]) == 0
        assert main([str(FIXTURES / "bad_shm.py"), "--select", "REP002"]) == 1
        out = capsys.readouterr().out
        assert "REP002" in out and "finding(s)" in out

    def test_unknown_code_rejected(self):
        with pytest.raises(SystemExit):
            main([str(FIXTURES), "--select", "REP999"])
