"""Differential suite for the static verifier (``repro.statics.verifier``).

Three pillars, per the static-analysis design:

* **Golden constructions** — every circuit pinned in
  ``tests/fixtures/golden_counts.json`` verifies clean, and the verifier's
  overflow verdict agrees with :func:`build_layer_plan` exactly.
* **Hypothesis differential** — on random gadget soups the abstract
  interpretation's per-gate intervals always contain the accumulator
  values actually observed under random inputs, its magnitude bound never
  exceeds the runtime's worst case, and an int64-safe verdict implies the
  compiled backends bit-match ``evaluate_slow``.
* **Tamper detection** — corrupted template provenance and corrupted
  columnar stores are caught (by the verifier, by ``validate_circuit``'s
  new default provenance pass, by the serialize path's load-time check,
  and by the engine's ``verify_compile`` debug gate).
"""

import dataclasses
import io
import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from test_compile_equivalence import _soup_circuit, assert_compile_equivalent
from test_golden_counts import CASES

from repro.circuits.circuit import ThresholdCircuit
from repro.circuits.serialize import circuit_to_dict, dump_circuit, load_circuit
from repro.circuits.simulator import build_layer_plan
from repro.circuits.store import segment_sum
from repro.circuits.validate import validate_circuit
from repro.cli import main as cli_main
from repro.engine import Engine, EngineConfig
from repro.statics import (
    StaticReport,
    StaticVerificationError,
    gate_intervals,
    provenance_issues,
    structure_issues,
    unreachable_gates,
    verify_circuit,
)


def _random_inputs(circuit, batch, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=(circuit.n_inputs, batch)).astype(np.int64)


def _tamper_first_block(circuit):
    """Swap the first template block's parameter columns (store untouched)."""
    block = circuit.template_blocks[0]
    params = np.array(block.params)
    if params.shape[1] < 2:
        pytest.skip("first block has fewer than two parameter slots")
    swapped = params[:, ::-1].copy()
    if np.array_equal(swapped, params):
        pytest.skip("parameter rows are palindromic; swap is a no-op")
    circuit.template_blocks[0] = dataclasses.replace(block, params=swapped)
    return circuit


# --------------------------------------------------------------------------- #
# Golden constructions.
# --------------------------------------------------------------------------- #


class TestGoldenConstructions:
    @pytest.mark.parametrize("name", sorted(CASES))
    def test_verifies_clean(self, name):
        circuit = CASES[name]()
        report = verify_circuit(circuit, target=name)
        assert report.ok, report.issues
        plan = build_layer_plan(circuit)
        assert report.info["max_magnitude"] == plan.max_magnitude
        assert report.info["int64_safe"] == plan.int64_safe
        assert report.info["float64_exact"] == plan.float64_exact
        # The interval analysis is a refinement: never looser than worst case.
        assert report.info["interval_max_magnitude"] <= plan.max_magnitude

    def test_cli_verify_all_golden(self, tmp_path):
        paths = []
        for name in sorted(CASES):
            path = tmp_path / f"{name}.json"
            dump_circuit(CASES[name](), str(path))
            paths.append(str(path))
        stream = io.StringIO()
        assert cli_main(["verify", *paths], stream=stream) == 0
        payload = json.loads(stream.getvalue())
        assert payload["ok"] is True
        assert len(payload["reports"]) == len(CASES)
        assert all(not r["issues"] for r in payload["reports"])


# --------------------------------------------------------------------------- #
# Hypothesis differential: analyzer vs runtime.
# --------------------------------------------------------------------------- #


class TestDifferential:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_soup_verdicts_and_interval_soundness(self, data):
        circuit = _soup_circuit(data)
        if circuit.size == 0:
            return
        report = verify_circuit(circuit, target="soup")
        assert report.ok, report.issues
        plan = build_layer_plan(circuit)
        assert report.info["max_magnitude"] == plan.max_magnitude
        assert report.info["int64_safe"] == plan.int64_safe

        intervals = gate_intervals(circuit)
        assert intervals.max_magnitude <= plan.max_magnitude

        # Observed accumulators on random inputs must land inside the
        # intervals — the soundness half of the abstract interpretation.
        cols = circuit.columnar()
        inputs = _random_inputs(circuit, batch=3, seed=7)
        for b in range(inputs.shape[1]):
            values = circuit.evaluate_slow(list(inputs[:, b]))
            acc = segment_sum(
                cols.weights * values[cols.sources], cols.offsets
            )
            assert bool(np.all(intervals.acc_lo <= acc)), "interval lower bound violated"
            assert bool(np.all(acc <= intervals.acc_hi)), "interval upper bound violated"
            # Constant-gate claims are exact, not just sound.
            n_inputs = circuit.n_inputs
            for node in intervals.constant_gates:
                gate = int(node) - n_inputs
                assert intervals.val_lo[node] == intervals.val_hi[node]
                assert values[node] == int(intervals.val_lo[node])

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_int64_safe_implies_backend_bitmatch(self, data):
        circuit = _soup_circuit(data)
        if circuit.size == 0:
            return
        report = verify_circuit(circuit, provenance=True, target="soup")
        assert report.ok, report.issues
        if report.info["int64_safe"]:
            assert_compile_equivalent(circuit, _random_inputs(circuit, 3, 13))

    def test_huge_weights_take_exact_path(self):
        circuit = ThresholdCircuit(2, name="huge")
        gate = circuit.add_gate_parts([0, 1], [2**62, -(2**62)], 1)
        circuit.set_outputs([gate])
        report = verify_circuit(circuit)
        assert report.ok, report.issues
        plan = build_layer_plan(circuit)
        assert report.info["int64_safe"] is False
        assert plan.int64_safe is False
        assert report.info["max_magnitude"] == plan.max_magnitude == 2**63 + 1
        # The interval bound is tighter: both weights cannot peak together.
        intervals = gate_intervals(circuit)
        assert intervals.max_magnitude == 2**62
        assert intervals.acc_lo[0] == -(2**62)
        assert intervals.acc_hi[0] == 2**62


# --------------------------------------------------------------------------- #
# Structure, reachability, constants.
# --------------------------------------------------------------------------- #


class TestStructure:
    def test_corrupt_store_is_caught(self, monkeypatch):
        circuit = CASES["naive-triangles-n6-tau2"]()
        cols = circuit.columnar()
        bad_sources = cols.sources.copy()
        bad_sources[-1] = circuit.n_nodes + 5  # dangling forward reference
        bad = dataclasses.replace(cols, sources=bad_sources)
        monkeypatch.setattr(circuit, "columnar", lambda: bad)
        issues = structure_issues(circuit)
        assert issues and "not an earlier node" in issues[0]
        report = verify_circuit(circuit)
        assert not report.ok

    def test_inconsistent_depths_are_caught(self, monkeypatch):
        circuit = CASES["naive-triangles-n6-tau2"]()
        depths = circuit.gate_depths().copy()
        depths[-1] += 1
        monkeypatch.setattr(circuit, "gate_depths", lambda: depths)
        issues = structure_issues(circuit)
        assert issues and "depth" in issues[0]

    def test_unreachable_gate_reported(self):
        circuit = ThresholdCircuit(2, name="dead-gate")
        live = circuit.add_gate_parts([0, 1], [1, 1], 1)
        circuit.add_gate_parts([0], [1], 1)  # never consumed
        circuit.set_outputs([live])
        dead = unreachable_gates(circuit)
        assert dead.tolist() == [3]
        report = verify_circuit(circuit)
        assert report.ok  # dead gates warn, they do not fail
        assert report.info["unreachable_gates"] == 1
        assert any("cannot reach" in w for w in report.warnings)

    def test_no_outputs_skips_reachability(self):
        circuit = ThresholdCircuit(2)
        circuit.add_gate_parts([0, 1], [1, 1], 1)
        assert unreachable_gates(circuit).size == 0
        report = verify_circuit(circuit)
        assert report.ok
        assert any("no outputs" in w for w in report.warnings)

    def test_constant_gates_detected(self):
        circuit = ThresholdCircuit(2, name="constants")
        always = circuit.add_gate_parts([0], [1], 0)  # fires on 0 and 1
        never = circuit.add_gate_parts([1], [1], 5)  # can never reach 5
        free = circuit.add_gate_parts([0, 1], [1, 1], 2)
        circuit.set_outputs([always, never, free])
        intervals = gate_intervals(circuit)
        assert intervals.constant_gates.tolist() == [always, never]
        assert intervals.val_lo[always] == intervals.val_hi[always] == 1
        assert intervals.val_lo[never] == intervals.val_hi[never] == 0
        assert intervals.val_lo[free] == 0 and intervals.val_hi[free] == 1

    def test_empty_circuit(self):
        report = verify_circuit(ThresholdCircuit(3))
        assert report.ok
        assert report.info["max_magnitude"] == 0
        assert report.info["int64_safe"] is True

    def test_report_raise_and_dict(self):
        report = StaticReport(target="t")
        assert report.ok
        report.raise_if_failed()  # no-op while clean
        report.issues.append("boom")
        with pytest.raises(StaticVerificationError, match="boom"):
            report.raise_if_failed()
        payload = report.as_dict()
        assert payload["ok"] is False and payload["target"] == "t"
        json.dumps(payload)  # JSON-clean by construction


# --------------------------------------------------------------------------- #
# Provenance tampering, across every enforcement point.
# --------------------------------------------------------------------------- #


class TestProvenance:
    def _stamped(self):
        circuit = CASES["matmul-strassen-n4-b1"]()
        assert circuit.template_blocks
        return circuit

    def test_clean_provenance(self):
        assert provenance_issues(self._stamped()) == []

    def test_tampered_params_detected(self):
        circuit = _tamper_first_block(self._stamped())
        issues = provenance_issues(circuit)
        assert issues and "diverge" in issues[0]

    def test_validate_circuit_checks_provenance_by_default(self):
        circuit = _tamper_first_block(self._stamped())
        report = validate_circuit(circuit)
        assert not report.ok
        assert validate_circuit(circuit, check_provenance=False).ok

    def test_engine_verify_compile_gate(self):
        good = self._stamped()
        engine = Engine(EngineConfig(verify_compile=True))
        inputs = _random_inputs(good, 2, 5)
        baseline = Engine().evaluate(good, inputs)
        gated = engine.evaluate(good, inputs)
        assert np.array_equal(baseline.outputs, gated.outputs)
        bad = _tamper_first_block(self._stamped())
        with pytest.raises(StaticVerificationError):
            Engine(EngineConfig(verify_compile=True)).evaluate(bad, inputs)

    def test_missing_template_detected(self):
        circuit = self._stamped()
        block = circuit.template_blocks[0]
        circuit.template_blocks[0] = dataclasses.replace(block, template=None)
        issues = provenance_issues(circuit)
        assert issues and "no compiled template" in issues[0]

    def test_shifted_base_detected(self):
        circuit = self._stamped()
        block = circuit.template_blocks[0]
        circuit.template_blocks[0] = dataclasses.replace(
            block, base=int(block.base) + 1
        )
        # A one-gate shift must break *something* — fan-ins, weights,
        # thresholds or sources no longer re-derive at the shifted range.
        assert provenance_issues(circuit)


# --------------------------------------------------------------------------- #
# Serialize-path validation (satellite: validated loads by default).
# --------------------------------------------------------------------------- #


class TestSerializeValidation:
    def test_roundtrip_validates_clean(self, tmp_path):
        circuit = CASES["naive-matmul-n4-b1-stages1"]()
        path = tmp_path / "c.json"
        dump_circuit(circuit, str(path))
        loaded = load_circuit(str(path))  # validate=True is the default
        assert loaded.structural_hash() == circuit.structural_hash()
        # opt-out path loads the same circuit without the check
        opted_out = load_circuit(str(path), validate=False)
        assert opted_out.structural_hash() == circuit.structural_hash()

    def test_cli_verify_reports_unloadable_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "not-a-circuit"}))
        stream = io.StringIO()
        assert cli_main(["verify", str(bad)], stream=stream) == 1
        payload = json.loads(stream.getvalue())
        assert payload["ok"] is False
        assert "failed to load" in payload["reports"][0]["issues"][0]

    def test_cli_verify_text_and_quick(self, tmp_path):
        circuit = CASES["naive-triangles-n6-tau2"]()
        path = tmp_path / "c.json"
        dump_circuit(circuit, str(path))
        stream = io.StringIO()
        assert (
            cli_main(["verify", "--quick", "--format", "text", str(path)], stream=stream)
            == 0
        )
        assert "ok" in stream.getvalue()
