"""Tests for the triangle-counting / social-network application (experiment E11)."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.triangles import (
    adjacency_matrix,
    block_two_level_adjacency,
    build_triangle_query,
    erdos_renyi_adjacency,
    global_clustering_coefficient,
    graph_from_adjacency,
    pad_adjacency,
    planted_clique_adjacency,
    preferential_attachment_adjacency,
    tau_from_clustering_target,
    tau_from_wedges,
    trace_cubed,
    triangle_count,
    triangles_per_vertex,
    validate_adjacency,
    wedge_count,
)


class TestGraphHelpers:
    def test_adjacency_roundtrip(self, rng):
        adjacency = erdos_renyi_adjacency(8, 0.4, rng)
        graph = graph_from_adjacency(adjacency)
        assert (adjacency_matrix(graph, 8) == adjacency).all()

    def test_adjacency_matrix_embedding(self):
        graph = nx.path_graph(3)
        adjacency = adjacency_matrix(graph, 5)
        assert adjacency.shape == (5, 5)
        assert adjacency.sum() == 4  # two undirected edges

    def test_validate_rejects_bad_matrices(self):
        with pytest.raises(ValueError):
            validate_adjacency(np.array([[0, 1], [1, 1]]))  # self loop
        with pytest.raises(ValueError):
            validate_adjacency(np.array([[0, 1], [0, 0]]))  # asymmetric
        with pytest.raises(ValueError):
            validate_adjacency(np.array([[0, 2], [2, 0]]))  # non-binary

    def test_pad_preserves_counts(self, rng):
        adjacency = erdos_renyi_adjacency(5, 0.6, rng)
        padded, original = pad_adjacency(adjacency, 2)
        assert padded.shape == (8, 8) and original == 5
        assert triangle_count(padded) == triangle_count(adjacency)
        assert wedge_count(padded) == wedge_count(adjacency)


class TestCounting:
    def test_triangle_count_matches_networkx(self, rng):
        adjacency = erdos_renyi_adjacency(10, 0.4, rng)
        graph = graph_from_adjacency(adjacency)
        expected = sum(nx.triangles(graph).values()) // 3
        assert triangle_count(adjacency) == expected

    def test_trace_is_six_times_triangles(self, rng):
        adjacency = erdos_renyi_adjacency(9, 0.5, rng)
        assert trace_cubed(adjacency) == 6 * triangle_count(adjacency)

    def test_wedge_count_matches_definition(self):
        adjacency = adjacency_matrix(nx.star_graph(4), 5)  # hub of degree 4
        assert wedge_count(adjacency) == math.comb(4, 2)

    def test_triangles_per_vertex(self):
        adjacency = adjacency_matrix(nx.complete_graph(4), 4)
        assert triangles_per_vertex(adjacency).tolist() == [3, 3, 3, 3]

    def test_complete_graph_triangle_count(self):
        adjacency = adjacency_matrix(nx.complete_graph(6), 6)
        assert triangle_count(adjacency) == math.comb(6, 3)


class TestClustering:
    def test_matches_networkx_transitivity(self, rng):
        adjacency = erdos_renyi_adjacency(10, 0.5, rng)
        graph = graph_from_adjacency(adjacency)
        assert global_clustering_coefficient(adjacency) == pytest.approx(nx.transitivity(graph))

    def test_triangle_free_graph(self):
        adjacency = adjacency_matrix(nx.cycle_graph(4), 4)
        assert global_clustering_coefficient(adjacency) == 0.0

    def test_tau_from_wedges(self, rng):
        adjacency = erdos_renyi_adjacency(10, 0.5, rng)
        tau = tau_from_wedges(adjacency, 0.3)
        assert tau >= 1
        assert tau == tau_from_clustering_target(wedge_count(adjacency), 0.3)

    def test_tau_target_validation(self):
        with pytest.raises(ValueError):
            tau_from_clustering_target(10, 1.5)
        with pytest.raises(ValueError):
            tau_from_clustering_target(-1, 0.5)


class TestGenerators:
    def test_erdos_renyi_is_valid(self, rng):
        validate_adjacency(erdos_renyi_adjacency(12, 0.3, rng))

    def test_block_structure_raises_clustering(self, rng):
        clustered = block_two_level_adjacency(24, 6, p_within=0.9, p_between=0.02, rng=rng)
        background = erdos_renyi_adjacency(24, float(clustered.sum()) / (24 * 23), rng)
        assert global_clustering_coefficient(clustered) > global_clustering_coefficient(background)

    def test_preferential_attachment_degrees(self, rng):
        adjacency = preferential_attachment_adjacency(20, m=2, rng=rng)
        validate_adjacency(adjacency)
        assert adjacency.sum(axis=1).max() > 2  # hubs exist

    def test_planted_clique_triangle_lower_bound(self, rng):
        adjacency = planted_clique_adjacency(16, 6, background_p=0.0, rng=rng)
        assert triangle_count(adjacency) == math.comb(6, 3)

    def test_generator_argument_validation(self, rng):
        with pytest.raises(ValueError):
            erdos_renyi_adjacency(5, 1.2, rng)
        with pytest.raises(ValueError):
            block_two_level_adjacency(5, 9, rng=rng)
        with pytest.raises(ValueError):
            planted_clique_adjacency(4, 9, rng=rng)


class TestTriangleQuery:
    def test_query_matches_reference_on_generated_graphs(self, rng):
        adjacency = erdos_renyi_adjacency(6, 0.5, rng)
        triangles = triangle_count(adjacency)
        for tau in (max(1, triangles), triangles + 1):
            query = build_triangle_query(6, tau_triangles=tau, depth_parameter=2)
            assert query.evaluate(adjacency) == query.reference(adjacency)

    def test_query_pads_vertex_count(self):
        query = build_triangle_query(6, tau_triangles=1, depth_parameter=1)
        assert query.trace_circuit.n == 8

    def test_tau_from_clustering_target(self, rng):
        adjacency = block_two_level_adjacency(8, 4, p_within=1.0, p_between=0.0, rng=rng)
        query = build_triangle_query(
            8, clustering_target=0.5, reference_graph=adjacency, depth_parameter=1
        )
        assert query.evaluate(adjacency) == query.reference(adjacency)

    def test_missing_tau_specification(self):
        with pytest.raises(ValueError):
            build_triangle_query(6)

    def test_graph_too_large_rejected(self, rng):
        query = build_triangle_query(4, tau_triangles=1, depth_parameter=1)
        with pytest.raises(ValueError):
            query.evaluate(erdos_renyi_adjacency(16, 0.5, rng))
