"""Tests for repro.util.bits — the paper's bits() helper and binary codecs."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.bits import bits, from_binary, max_abs_entry_bits, signed_split, to_binary


class TestBits:
    def test_matches_paper_definition_small_values(self):
        # bits(m) = least l with m < 2**l.
        assert bits(0) == 0
        assert bits(1) == 1
        assert bits(2) == 2
        assert bits(3) == 2
        assert bits(4) == 3
        assert bits(255) == 8
        assert bits(256) == 9

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bits(-1)

    @given(st.integers(min_value=0, max_value=10**30))
    def test_definition_property(self, m):
        l = bits(m)
        assert m < 2 ** l
        if l > 0:
            assert m >= 2 ** (l - 1)


class TestSignedSplit:
    def test_positive(self):
        assert signed_split(7) == (7, 0)

    def test_negative(self):
        assert signed_split(-7) == (0, 7)

    def test_zero(self):
        assert signed_split(0) == (0, 0)

    @given(st.integers(min_value=-(10**18), max_value=10**18))
    def test_roundtrip(self, x):
        pos, neg = signed_split(x)
        assert pos >= 0 and neg >= 0
        assert pos - neg == x
        assert pos == 0 or neg == 0


class TestBinaryCodec:
    def test_to_binary_lsb_first(self):
        assert to_binary(6, 4) == [0, 1, 1, 0]

    def test_to_binary_overflow_raises(self):
        with pytest.raises(ValueError):
            to_binary(8, 3)

    def test_to_binary_negative_raises(self):
        with pytest.raises(ValueError):
            to_binary(-1, 3)

    def test_from_binary_rejects_non_bits(self):
        with pytest.raises(ValueError):
            from_binary([0, 2, 1])

    @given(st.integers(min_value=0, max_value=2**40 - 1), st.integers(min_value=0, max_value=10))
    def test_roundtrip(self, value, extra_width):
        width = bits(value) + extra_width
        assert from_binary(to_binary(value, width)) == value


class TestMaxAbsEntryBits:
    def test_simple_matrix(self):
        assert max_abs_entry_bits([[0, 3], [-5, 1]]) == 3

    def test_zero_matrix(self):
        assert max_abs_entry_bits(np.zeros((2, 2))) == 0
