"""Tests for repro.util.encoding — the matrix-to-wire codecs."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.encoding import MatrixEncoding, decode_integer, encode_integer


class TestIntegerCodec:
    def test_positive_value(self):
        assert encode_integer(5, 3) == [1, 0, 1, 0, 0, 0]

    def test_negative_value(self):
        assert encode_integer(-5, 3) == [0, 0, 0, 1, 0, 1]

    def test_zero(self):
        assert encode_integer(0, 2) == [0, 0, 0, 0]

    def test_overflow_raises(self):
        with pytest.raises(ValueError):
            encode_integer(8, 3)

    def test_decode_length_check(self):
        with pytest.raises(ValueError):
            decode_integer([0, 1], 3)

    @given(st.integers(min_value=-255, max_value=255))
    def test_roundtrip(self, value):
        assert decode_integer(encode_integer(value, 8), 8) == value


class TestMatrixEncoding:
    def test_wire_layout_is_disjoint_and_complete(self):
        enc = MatrixEncoding(n=3, bit_width=2, offset=10)
        wires = []
        for i in range(3):
            for j in range(3):
                pos, neg = enc.entry_wires(i, j)
                wires.extend(pos + neg)
        assert len(wires) == len(set(wires)) == enc.total_wires
        assert min(wires) == 10
        assert max(wires) == 10 + enc.total_wires - 1

    def test_out_of_range_entry(self):
        enc = MatrixEncoding(n=2, bit_width=1)
        with pytest.raises(IndexError):
            enc.entry_wires(2, 0)

    def test_encode_decode_roundtrip(self, rng):
        enc = MatrixEncoding(n=4, bit_width=3)
        matrix = rng.integers(-7, 8, (4, 4))
        decoded = enc.decode(enc.encode(matrix))
        assert (decoded == matrix).all()

    def test_encode_shape_mismatch(self):
        enc = MatrixEncoding(n=2, bit_width=1)
        with pytest.raises(ValueError):
            enc.encode(np.zeros((3, 3)))

    def test_encode_rejects_wide_entries(self):
        enc = MatrixEncoding(n=2, bit_width=2)
        with pytest.raises(ValueError):
            enc.encode(np.full((2, 2), 4))

    def test_total_wires(self):
        enc = MatrixEncoding(n=5, bit_width=3)
        assert enc.total_wires == 5 * 5 * 6
        assert enc.wires_per_entry == 6
