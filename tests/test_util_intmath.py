"""Tests for repro.util.intmath."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util.intmath import ceil_div, ceil_log, ilog, is_power_of, multinomial, prod


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(12, 4) == 3

    def test_rounding_up(self):
        assert ceil_div(13, 4) == 4

    def test_negative_numerator(self):
        assert ceil_div(-13, 4) == -3

    def test_zero_divisor_raises(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)


class TestLogs:
    def test_ilog_exact_powers(self):
        assert ilog(1, 2) == 0
        assert ilog(8, 2) == 3
        assert ilog(81, 3) == 4

    def test_ilog_rejects_non_powers(self):
        with pytest.raises(ValueError):
            ilog(10, 2)

    def test_ceil_log(self):
        assert ceil_log(1, 2) == 0
        assert ceil_log(5, 2) == 3
        assert ceil_log(8, 2) == 3
        assert ceil_log(9, 2) == 4

    def test_is_power_of(self):
        assert is_power_of(1, 7)
        assert is_power_of(49, 7)
        assert not is_power_of(50, 7)
        assert not is_power_of(0, 2)

    @given(st.integers(min_value=1, max_value=10**9), st.integers(min_value=2, max_value=10))
    def test_ceil_log_property(self, n, base):
        k = ceil_log(n, base)
        assert base ** k >= n
        assert k == 0 or base ** (k - 1) < n


class TestMultinomial:
    def test_binomial_case(self):
        assert multinomial([2, 3]) == math.comb(5, 2)

    def test_trinomial(self):
        assert multinomial([1, 1, 1]) == 6

    def test_empty(self):
        assert multinomial([]) == 1

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            multinomial([1, -1])

    @given(st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=4))
    def test_matches_factorial_formula(self, counts):
        total = sum(counts)
        expected = math.factorial(total)
        for c in counts:
            expected //= math.factorial(c)
        assert multinomial(counts) == expected


class TestProd:
    def test_empty_is_one(self):
        assert prod([]) == 1

    def test_values(self):
        assert prod([2, 3, 7]) == 42
