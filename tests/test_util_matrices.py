"""Tests for repro.util.matrices."""

import numpy as np
import pytest

from repro.util.matrices import (
    as_exact_array,
    block_view,
    pad_to_power,
    random_adjacency_matrix,
    random_integer_matrix,
)


class TestAsExactArray:
    def test_converts_to_python_ints(self, rng):
        arr = as_exact_array(rng.integers(-5, 5, (3, 3)))
        assert arr.dtype == object
        assert all(isinstance(v, int) for v in arr.flat)

    def test_rejects_non_square_shapes(self):
        with pytest.raises(ValueError):
            as_exact_array(np.zeros(3))


class TestBlockView:
    def test_blocks_tile_the_matrix(self, rng):
        m = rng.integers(0, 10, (6, 6))
        reassembled = np.block(
            [[block_view(m, 3, p, q) for q in range(3)] for p in range(3)]
        )
        assert (reassembled == m).all()

    def test_block_is_a_view(self):
        m = np.zeros((4, 4))
        view = block_view(m, 2, 1, 1)
        m[2, 2] = 5
        assert view[0, 0] == 5

    def test_bad_indices(self):
        with pytest.raises(ValueError):
            block_view(np.zeros((4, 4)), 2, 2, 0)

    def test_indivisible_dimension(self):
        with pytest.raises(ValueError):
            block_view(np.zeros((5, 5)), 2, 0, 0)


class TestPadToPower:
    def test_already_power(self):
        m = np.ones((8, 8))
        padded, n = pad_to_power(m, 2)
        assert padded is m and n == 8

    def test_pads_with_zeros(self):
        m = np.ones((5, 5))
        padded, n = pad_to_power(m, 2)
        assert padded.shape == (8, 8) and n == 5
        assert padded[:5, :5].sum() == 25
        assert padded.sum() == 25

    def test_base_three(self):
        padded, _ = pad_to_power(np.ones((4, 4)), 3)
        assert padded.shape == (9, 9)


class TestRandomMatrices:
    def test_integer_matrix_respects_bit_width(self, rng):
        m = random_integer_matrix(10, 3, rng=rng)
        assert np.abs(m).max() < 2 ** 3

    def test_unsigned_matrix(self, rng):
        m = random_integer_matrix(10, 3, rng=rng, signed=False)
        assert m.min() >= 0

    def test_adjacency_matrix_is_simple_graph(self, rng):
        adj = random_adjacency_matrix(12, 0.5, rng=rng)
        assert (adj == adj.T).all()
        assert (np.diag(adj) == 0).all()
        assert np.isin(adj, (0, 1)).all()

    def test_adjacency_extreme_probabilities(self, rng):
        assert random_adjacency_matrix(6, 0.0, rng=rng).sum() == 0
        full = random_adjacency_matrix(6, 1.0, rng=rng)
        assert full.sum() == 6 * 5

    def test_invalid_arguments(self, rng):
        with pytest.raises(ValueError):
            random_integer_matrix(0, 3, rng=rng)
        with pytest.raises(ValueError):
            random_adjacency_matrix(4, 1.5, rng=rng)
