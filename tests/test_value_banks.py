"""Value banks: array-native Rep/SignedValue interfaces between stages.

Covers the bank containers themselves (scalar views, gathers, overrides),
the banked gadget emitters' wire-for-wire equality with the scalar paths,
and the CountingBuilder regressions that rode along (depth-memoization fix,
bulk protocol).
"""

import numpy as np
import pytest

from repro.arithmetic.product import build_signed_product_banks, build_signed_products
from repro.arithmetic.signed import (
    BinaryNumber,
    Rep,
    RepBank,
    SignedBinaryNumber,
    SignedValue,
    SignedValueBank,
)
from repro.arithmetic.weighted_sum import build_signed_sum_banks, build_signed_sums
from repro.circuits.builder import CircuitBuilder
from repro.circuits.counting import CountingBuilder
from repro.core.direct_circuit import build_direct_matmul_circuit
from repro.core.leaf_builder import matrix_of_input_banks, matrix_of_inputs
from repro.core.matmul_circuit import build_matmul_circuit
from repro.core.naive_circuits import (
    build_naive_matmul_circuit,
    build_naive_trace_circuit,
)
from repro.core.trace_circuit import build_trace_circuit
from repro.util.encoding import MatrixEncoding


# --------------------------------------------------------------------------- #
# Bank containers.
# --------------------------------------------------------------------------- #


class TestBanks:
    def test_rep_bank_scalar_views(self):
        bank = RepBank(
            np.asarray([[2, 5], [3, 7]], dtype=np.int64),
            (1, 2),
            positions=(0, 1),
            width=2,
        )
        assert bank.k == 2 and bank.n_terms == 2
        assert bank.max_value == 3
        assert bank.rep(0) == Rep(((2, 1), (5, 2)))
        number = bank.binary(1)
        assert isinstance(number, BinaryNumber)
        assert number.bit_nodes == (3, 7) and number.bit_positions == (0, 1)
        assert number.width == 2

    def test_signed_bank_matches_scalar_values(self):
        pos = RepBank(np.asarray([[1, 4]], dtype=np.int64), (1, 2), (0, 1), 2)
        neg = RepBank(np.asarray([[6]], dtype=np.int64), (1,), (0,), 1)
        bank = SignedValueBank(pos, neg)
        value = bank.signed_value(0)
        assert value == SignedValue(Rep(((1, 1), (4, 2))), Rep(((6, 1),)))
        number = bank.signed_binary(0)
        assert number.pos.bit_nodes == (1, 4) and number.neg.bit_nodes == (6,)

    def test_gather_and_rows(self):
        pos = RepBank(np.arange(6, dtype=np.int64).reshape(3, 2), (1, 2))
        bank = SignedValueBank(pos, RepBank(np.zeros((3, 0), dtype=np.int64), ()))
        sub = bank.gather(np.asarray([2, 0]))
        assert sub.k == 2
        assert sub.pos.nodes.tolist() == [[4, 5], [0, 1]]
        row = bank.row(1)
        assert row.k == 1 and row.pos.nodes.tolist() == [[2, 3]]

    def test_override_rows_are_guarded(self):
        pos = RepBank(np.zeros((2, 1), dtype=np.int64), (1,))
        bank = SignedValueBank(
            pos,
            RepBank(np.zeros((2, 0), dtype=np.int64), ()),
            overrides={1: SignedValue(Rep(((9, 3),)), Rep())},
        )
        assert bank.signed_value(1) == SignedValue(Rep(((9, 3),)), Rep())
        with pytest.raises(ValueError):
            bank.row(1)
        with pytest.raises(ValueError):
            bank.gather(np.asarray([0, 1]))
        carried = bank.row_any(1)
        assert carried.signed_value(0) == SignedValue(Rep(((9, 3),)), Rep())

    def test_from_scalars_roundtrip(self):
        values = [
            SignedBinaryNumber.from_input_bits([0, 1], [2]),
            SignedBinaryNumber.from_input_bits([3, 4], [5]),
        ]
        bank = SignedValueBank.from_scalars(values)
        assert bank.overrides is None
        for i, value in enumerate(values):
            assert bank.signed_binary(i) == value

    def test_input_bank_matches_scalar_matrix(self):
        encoding = MatrixEncoding(3, 2, offset=5)
        bank = matrix_of_input_banks(encoding)
        scalars = matrix_of_inputs(encoding)
        for i in range(3):
            for j in range(3):
                assert bank.signed_binary(i * 3 + j) == scalars[i, j]
        transposed = matrix_of_input_banks(encoding, transpose=True)
        for i in range(3):
            for j in range(3):
                assert transposed.signed_binary(i * 3 + j) == scalars[j, i]


# --------------------------------------------------------------------------- #
# Banked emitters vs the scalar paths (same builder semantics, same wires).
# --------------------------------------------------------------------------- #


def _input_bank(builder, count, bits):
    wires = builder.allocate_inputs(count * 2 * bits, "x")
    encoding = MatrixEncoding(1, bits, offset=wires[0])
    base = wires[0] + np.arange(count, dtype=np.int64)[:, None] * 2 * bits
    bit = np.arange(bits, dtype=np.int64)[None, :]
    positions = tuple(range(bits))
    weights = tuple(1 << b for b in range(bits))
    return SignedValueBank(
        RepBank(base + bit, weights, positions, bits),
        RepBank(base + bits + bit, weights, positions, bits),
    )


class TestBankedEmitters:
    def test_banked_sums_equal_scalar_sums(self):
        banked = CircuitBuilder(name="banked")
        scalar = CircuitBuilder(name="scalar")
        bank = _input_bank(banked, 6, 2)
        bank_s = _input_bank(scalar, 6, 2)
        rows = np.asarray([[0, 2], [1, 3], [4, 5]], dtype=np.int64)
        result = build_signed_sum_banks(
            banked,
            [(bank, rows[:, 0], 2), (bank, rows[:, 1], -1)],
            tag="t",
        )
        items_list = [
            [(bank_s.signed_value(int(rows[i, 0])), 2), (bank_s.signed_value(int(rows[i, 1])), -1)]
            for i in range(3)
        ]
        expected = build_signed_sums(scalar, items_list, tag="t")
        assert banked.build().structural_hash() == scalar.build().structural_hash()
        for i in range(3):
            assert result.signed_binary(i) == expected[i]

    def test_spread_rows_equal_term_lists(self):
        banked = CircuitBuilder(name="banked")
        scalar = CircuitBuilder(name="scalar")
        bank = _input_bank(banked, 4, 1)
        bank_s = _input_bank(scalar, 4, 1)
        spread = np.arange(4, dtype=np.int64)[None, :]
        result = build_signed_sum_banks(banked, [(bank, spread, 1)], tag="t")
        expected = build_signed_sums(
            scalar,
            [[(bank_s.signed_value(i), 1) for i in range(4)]],
            tag="t",
        )
        assert banked.build().structural_hash() == scalar.build().structural_hash()
        assert result.signed_binary(0) == expected[0]

    def test_banked_products_equal_scalar_products(self):
        banked = CircuitBuilder(name="banked")
        scalar = CircuitBuilder(name="scalar")
        bank = _input_bank(banked, 4, 2)
        bank_s = _input_bank(scalar, 4, 2)
        left = bank.gather(np.asarray([0, 1]))
        right = bank.gather(np.asarray([2, 3]))
        result = build_signed_product_banks(banked, [left, right], tag="p")
        expected = build_signed_products(
            scalar,
            [
                [bank_s.signed_binary(0), bank_s.signed_binary(2)],
                [bank_s.signed_binary(1), bank_s.signed_binary(3)],
            ],
            tag="p",
        )
        assert banked.build().structural_hash() == scalar.build().structural_hash()
        for i in range(2):
            assert result.signed_value(i) == expected[i]

    def test_duplicate_factor_rows_become_overrides(self):
        banked = CircuitBuilder(name="banked")
        scalar = CircuitBuilder(name="scalar")
        bank = _input_bank(banked, 3, 1)
        bank_s = _input_bank(scalar, 3, 1)
        # Row 1 multiplies a value by itself: duplicated parameters.
        left = bank.gather(np.asarray([0, 2, 1]))
        right = bank.gather(np.asarray([1, 2, 0]))
        result = build_signed_product_banks(banked, [left, right], tag="p")
        expected = build_signed_products(
            scalar,
            [
                [bank_s.signed_binary(0), bank_s.signed_binary(1)],
                [bank_s.signed_binary(2), bank_s.signed_binary(2)],
                [bank_s.signed_binary(1), bank_s.signed_binary(0)],
            ],
            tag="p",
        )
        assert banked.build().structural_hash() == scalar.build().structural_hash()
        for i in range(3):
            assert result.signed_value(i) == expected[i]


# --------------------------------------------------------------------------- #
# End-to-end: banked pipeline == stamped == legacy, wire for wire.
# --------------------------------------------------------------------------- #


class TestBankedPipelines:
    @pytest.mark.parametrize(
        "build",
        [
            lambda **kw: build_naive_matmul_circuit(4, stages=2, **kw),
            lambda **kw: build_naive_trace_circuit(3, 5, **kw),
            lambda **kw: build_matmul_circuit(4, depth_parameter=1, **kw),
            lambda **kw: build_trace_circuit(4, 7, depth_parameter=2, **kw),
            lambda **kw: build_direct_matmul_circuit(4, stages=2, **kw),
        ],
    )
    def test_three_paths_hash_identical(self, build):
        banked = build().circuit
        stamped = build(banked=False).circuit
        legacy = build(vectorize=False).circuit
        assert banked.structural_hash() == legacy.structural_hash()
        assert stamped.structural_hash() == legacy.structural_hash()
        assert banked.stats() == legacy.stats()

    def test_banked_matmul_evaluates(self, rng):
        built = build_naive_matmul_circuit(3)
        hi = 2 ** built.bit_width
        a = rng.integers(-hi + 1, hi, size=(3, 3))
        b = rng.integers(-hi + 1, hi, size=(3, 3))
        assert (built.evaluate(a, b) == built.reference(a, b)).all()


# --------------------------------------------------------------------------- #
# CountingBuilder regressions.
# --------------------------------------------------------------------------- #


class TestCountingBuilder:
    def test_depth_memo_survives_source_list_mutation(self):
        """Regression: the depth memo must not serve stale maxima when a
        caller appends to (and reuses) the same source list between gates."""
        counting = CountingBuilder(name="memo")
        inputs = counting.allocate_inputs(2)
        shared = [inputs[0]]
        first = counting.add_gate(shared, [1], 1)  # depth 1
        deep = counting.add_gate([first], [1], 1)  # depth 2
        shared.append(deep)  # same list object, now one entry deeper
        counting.add_gate(shared, [1, 1], 1)
        assert counting.depth == 3

    def test_bulk_add_gates_matches_real_builder(self):
        counting = CountingBuilder(name="bulk")
        real = CircuitBuilder(name="bulk")
        for b in (counting, real):
            b.allocate_inputs(4)
        sources = np.asarray([0, 1, 2, 3, 4, 5, 1, 1], dtype=np.int64)
        offsets = np.asarray([0, 2, 4, 6, 8], dtype=np.int64)
        weights = np.ones(8, dtype=np.int64)
        thresholds = np.asarray([1, 2, 1, 1], dtype=np.int64)
        counting.add_gates(sources, offsets, weights, thresholds, tag="t")
        real.add_gates(sources, offsets, weights, thresholds, tag="t")
        circuit = real.build()
        assert counting.size == circuit.size
        assert counting.depth == circuit.depth
        assert counting.edges == circuit.edges  # incl. the merged dup row
        assert counting.max_fan_in == circuit.max_fan_in
        assert counting.tag_counts() == {"t": 4}
